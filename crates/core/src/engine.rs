//! Convenience façade: one object owning document + index, answering
//! queries with either algorithm and producing the §5.1 comparison in
//! one call.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use xks_index::{InvertedIndex, Query};
use xks_xmltree::XmlTree;

use crate::algorithms::{AnchorSemantics, StageTimings};
use crate::fragment::Fragment;
use crate::metrics::{effectiveness, Effectiveness};
use crate::prune::Policy;
use crate::scratch::QueryContext;
use crate::source::CorpusSource;

/// Which end-to-end algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// ValidRTF: all interesting LCAs + valid-contributor pruning.
    ValidRtf,
    /// Revised MaxMatch: all interesting LCAs + contributor pruning.
    MaxMatchRtf,
    /// Original MaxMatch: SLCA anchors + contributor pruning.
    MaxMatchSlca,
}

impl AlgorithmKind {
    fn anchor(self) -> AnchorSemantics {
        match self {
            AlgorithmKind::MaxMatchSlca => AnchorSemantics::SlcaOnly,
            _ => AnchorSemantics::AllLca,
        }
    }

    fn policy(self) -> Policy {
        match self {
            AlgorithmKind::ValidRtf => Policy::ValidContributor,
            _ => Policy::Contributor,
        }
    }
}

/// A search result: fragments plus timing.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The meaningful fragments.
    pub fragments: Vec<Fragment>,
    /// Elapsed time, broken down per stage.
    pub timings: StageTimings,
}

/// The per-query comparison of ValidRTF against the revised MaxMatch —
/// one data point of Figures 5 and 6.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Number of RTFs (the "RTFs" line of Figure 5).
    pub rtf_count: usize,
    /// ValidRTF elapsed time.
    pub valid_rtf_time: Duration,
    /// Revised MaxMatch elapsed time.
    pub max_match_time: Duration,
    /// CFR / APR / APR' / Max APR (Figure 6).
    pub effectiveness: Effectiveness,
}

/// The storage behind an engine: a parsed tree with its in-memory
/// inverted index, or any [`CorpusSource`] backend (shredded tables,
/// an `xks-persist` on-disk index, …).
#[derive(Debug)]
enum Backend {
    Tree { tree: XmlTree, index: InvertedIndex },
    Source(Arc<dyn CorpusSource>),
}

/// Document + index, ready to answer keyword queries.
///
/// `SearchEngine` is the shared **immutable** half of the read path —
/// it is `Send + Sync` and designed to be queried from many threads at
/// once (see [`crate::executor`]). All per-query mutable state lives in
/// a [`QueryContext`]:
///
/// * [`SearchEngine::search_with`] takes an explicit `&mut
///   QueryContext` — the per-thread, lock-free path the concurrent
///   executor uses;
/// * [`SearchEngine::search`] keeps the convenient `&self` signature by
///   checking a context in and out of a small internal pool (one
///   uncontended `Mutex` lock per query, never held across the query).
///
/// A warm context answers queries without heap allocation in the
/// anchor pipeline (asserted by the workspace's counting-allocator
/// test).
#[derive(Debug)]
pub struct SearchEngine {
    backend: Backend,
    /// Pool of warm contexts for the `&self` entry points. Capped so a
    /// burst of threads cannot pin unbounded scratch memory.
    contexts: Mutex<Vec<QueryContext>>,
}

/// Most contexts a [`SearchEngine`] keeps warm for its `&self` entry
/// points; checked-in contexts beyond this are dropped.
const CONTEXT_POOL_CAP: usize = 64;

impl SearchEngine {
    /// Builds the engine from a parsed tree (index construction happens
    /// here).
    #[must_use]
    pub fn new(tree: XmlTree) -> Self {
        let index = InvertedIndex::build(&tree);
        SearchEngine {
            backend: Backend::Tree { tree, index },
            contexts: Mutex::new(Vec::new()),
        }
    }

    /// Builds the engine over a **shared** [`CorpusSource`] backend —
    /// the index-handle form: one opened corpus (e.g. an
    /// `xks_persist::IndexReader` with its buffer pool and caches) can
    /// back any number of engines and outside observers without
    /// reopening the file. ValidRTF / MaxMatch run against the source's
    /// stored postings and node facts — identical results to the tree
    /// path for the same corpus, without requiring the parsed document
    /// in memory.
    #[must_use]
    pub fn from_source(source: Arc<dyn CorpusSource>) -> Self {
        SearchEngine {
            backend: Backend::Source(source),
            contexts: Mutex::new(Vec::new()),
        }
    }

    /// Convenience form of [`SearchEngine::from_source`] for callers
    /// that don't need to keep a handle on the source: wraps an owned
    /// corpus in an `Arc` internally.
    #[must_use]
    pub fn from_owned_source(source: impl CorpusSource + 'static) -> Self {
        Self::from_source(Arc::new(source))
    }

    /// The underlying document.
    ///
    /// # Panics
    /// Panics for engines built with [`SearchEngine::from_source`]
    /// (there is no parsed tree); use [`SearchEngine::corpus`] instead.
    #[must_use]
    pub fn tree(&self) -> &XmlTree {
        match &self.backend {
            Backend::Tree { tree, .. } => tree,
            Backend::Source(_) => {
                panic!("SearchEngine::tree() on a source-backed engine")
            }
        }
    }

    /// The underlying inverted index.
    ///
    /// # Panics
    /// Panics for engines built with [`SearchEngine::from_source`];
    /// use [`SearchEngine::corpus`] instead.
    #[must_use]
    pub fn index(&self) -> &InvertedIndex {
        match &self.backend {
            Backend::Tree { index, .. } => index,
            Backend::Source(_) => {
                panic!("SearchEngine::index() on a source-backed engine")
            }
        }
    }

    /// The corpus source for source-backed engines (`None` for
    /// tree-backed ones).
    #[must_use]
    pub fn corpus(&self) -> Option<&dyn CorpusSource> {
        match &self.backend {
            Backend::Tree { .. } => None,
            Backend::Source(source) => Some(source.as_ref()),
        }
    }

    /// Runs one algorithm on one query, reusing a pooled
    /// [`QueryContext`] (one short `Mutex` lock to check it out, one to
    /// return it; the query itself runs lock-free).
    #[must_use]
    pub fn search(&self, query: &Query, kind: AlgorithmKind) -> SearchResult {
        let mut ctx = self.checkout_context();
        let result = self.search_with(query, kind, &mut ctx);
        self.checkin_context(ctx);
        result
    }

    /// Runs one algorithm on one query with a caller-owned per-thread
    /// [`QueryContext`] — the lock-free path. Threads sharing one
    /// engine each bring their own context; a warm context answers
    /// without allocating in the anchor pipeline.
    #[must_use]
    pub fn search_with(
        &self,
        query: &Query,
        kind: AlgorithmKind,
        ctx: &mut QueryContext,
    ) -> SearchResult {
        let output = match &self.backend {
            Backend::Tree { tree, index } => crate::algorithms::run_query_tree(
                tree,
                index,
                query,
                kind.anchor(),
                kind.policy(),
                ctx,
            ),
            Backend::Source(source) => crate::algorithms::run_query_source(
                source.as_ref(),
                query,
                kind.anchor(),
                kind.policy(),
                ctx,
            ),
        };
        match output {
            Some((fragments, timings)) => SearchResult { fragments, timings },
            None => SearchResult {
                fragments: Vec::new(),
                timings: StageTimings::default(),
            },
        }
    }

    /// Takes a warm context from the pool (or makes a fresh one). The
    /// executor's workers use this too, so batches stay warm across
    /// calls.
    pub(crate) fn checkout_context(&self) -> QueryContext {
        self.contexts
            .lock()
            .expect("context pool lock")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a context to the pool, dropping it if the pool is full.
    pub(crate) fn checkin_context(&self, ctx: QueryContext) {
        let mut pool = self.contexts.lock().expect("context pool lock");
        if pool.len() < CONTEXT_POOL_CAP {
            pool.push(ctx);
        }
    }

    /// Runs one algorithm and returns the fragments **ranked best
    /// first** (the §7 future-work stage; see [`mod@crate::rank`]).
    #[must_use]
    pub fn search_ranked(
        &self,
        query: &Query,
        kind: AlgorithmKind,
        weights: &crate::rank::RankWeights,
    ) -> SearchResult {
        let mut out = self.search(query, kind);
        let order = crate::rank::rank(&out.fragments, query.len(), weights);
        out.fragments = order
            .iter()
            .map(|r| out.fragments[r.index].clone())
            .collect();
        out
    }

    /// Runs ValidRTF and revised MaxMatch on the same query and computes
    /// the Figure 5/6 data point.
    #[must_use]
    pub fn compare(&self, query: &Query) -> Comparison {
        let valid = self.search(query, AlgorithmKind::ValidRtf);
        let mm = self.search(query, AlgorithmKind::MaxMatchRtf);
        debug_assert_eq!(valid.fragments.len(), mm.fragments.len());
        let pairs: Vec<(Fragment, Fragment)> = valid
            .fragments
            .iter()
            .cloned()
            .zip(mm.fragments.iter().cloned())
            .collect();
        Comparison {
            rtf_count: valid.fragments.len(),
            valid_rtf_time: valid.timings.total(),
            max_match_time: mm.timings.total(),
            effectiveness: effectiveness(&pairs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xks_xmltree::fixtures::{publications, team, PAPER_QUERIES};

    fn q(s: &str) -> Query {
        Query::parse(s).unwrap()
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SearchEngine>();
    }

    #[test]
    fn search_with_matches_pooled_search() {
        let engine = SearchEngine::new(publications());
        let query = q(PAPER_QUERIES[2]);
        let pooled = engine.search(&query, AlgorithmKind::ValidRtf);
        let mut ctx = QueryContext::new();
        let explicit = engine.search_with(&query, AlgorithmKind::ValidRtf, &mut ctx);
        assert_eq!(pooled.fragments, explicit.fragments);
        // The pooled context was checked back in and gets reused.
        assert_eq!(engine.contexts.lock().unwrap().len(), 1);
        let _ = engine.search(&query, AlgorithmKind::ValidRtf);
        assert_eq!(engine.contexts.lock().unwrap().len(), 1);
    }

    #[test]
    fn shared_source_backs_many_engines() {
        use crate::source::MemoryCorpus;
        use std::sync::Arc;
        let corpus: Arc<dyn crate::source::CorpusSource> =
            Arc::new(MemoryCorpus::new(xks_store::shred(&publications())));
        let a = SearchEngine::from_source(Arc::clone(&corpus));
        let b = SearchEngine::from_source(corpus);
        let query = q(PAPER_QUERIES[2]);
        assert_eq!(
            a.search(&query, AlgorithmKind::ValidRtf).fragments,
            b.search(&query, AlgorithmKind::ValidRtf).fragments,
        );
    }

    #[test]
    fn engine_answers_paper_queries() {
        let engine = SearchEngine::new(publications());
        let r = engine.search(&q(PAPER_QUERIES[2]), AlgorithmKind::ValidRtf);
        assert_eq!(r.fragments.len(), 1);
        assert_eq!(r.fragments[0].len(), 8); // Figure 2(d)
    }

    #[test]
    fn compare_produces_figure6_point() {
        let engine = SearchEngine::new(team());
        let c = engine.compare(&q("grizzlies position"));
        assert_eq!(c.rtf_count, 1);
        assert_eq!(c.effectiveness.cfr, 0.0);
        assert!(c.effectiveness.max_apr > 0.2);
    }

    #[test]
    fn unmatched_query_is_empty_not_panic() {
        let engine = SearchEngine::new(team());
        let r = engine.search(&q("nonexistent"), AlgorithmKind::ValidRtf);
        assert!(r.fragments.is_empty());
        let c = engine.compare(&q("nonexistent"));
        assert_eq!(c.rtf_count, 0);
        assert_eq!(c.effectiveness.cfr, 1.0);
    }

    #[test]
    fn search_ranked_orders_best_first() {
        let engine = SearchEngine::new(publications());
        let out = engine.search_ranked(
            &q("liu keyword"),
            AlgorithmKind::ValidRtf,
            &crate::rank::RankWeights::default(),
        );
        assert_eq!(out.fragments.len(), 2);
        // The tight single-node ref fragment ranks above the article.
        assert_eq!(out.fragments[0].anchor.to_string(), "0.2.0.3.0");
    }

    #[test]
    fn slca_variant_returns_subset_of_anchors() {
        let engine = SearchEngine::new(publications());
        let slca = engine.search(&q("liu keyword"), AlgorithmKind::MaxMatchSlca);
        let all = engine.search(&q("liu keyword"), AlgorithmKind::MaxMatchRtf);
        assert!(slca.fragments.len() <= all.fragments.len());
        for f in &slca.fragments {
            assert!(all.fragments.iter().any(|g| g.anchor == f.anchor));
        }
    }
}
