//! Convenience façade: one object owning document + index, answering
//! queries with either algorithm and producing the §5.1 comparison in
//! one call.

use std::cell::RefCell;
use std::time::Duration;

use xks_index::{InvertedIndex, Query};
use xks_xmltree::XmlTree;

use crate::algorithms::{AnchorSemantics, StageTimings};
use crate::fragment::Fragment;
use crate::metrics::{effectiveness, Effectiveness};
use crate::prune::Policy;
use crate::scratch::QueryScratch;
use crate::source::CorpusSource;

/// Which end-to-end algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// ValidRTF: all interesting LCAs + valid-contributor pruning.
    ValidRtf,
    /// Revised MaxMatch: all interesting LCAs + contributor pruning.
    MaxMatchRtf,
    /// Original MaxMatch: SLCA anchors + contributor pruning.
    MaxMatchSlca,
}

impl AlgorithmKind {
    fn anchor(self) -> AnchorSemantics {
        match self {
            AlgorithmKind::MaxMatchSlca => AnchorSemantics::SlcaOnly,
            _ => AnchorSemantics::AllLca,
        }
    }

    fn policy(self) -> Policy {
        match self {
            AlgorithmKind::ValidRtf => Policy::ValidContributor,
            _ => Policy::Contributor,
        }
    }
}

/// A search result: fragments plus timing.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The meaningful fragments.
    pub fragments: Vec<Fragment>,
    /// Elapsed time, broken down per stage.
    pub timings: StageTimings,
}

/// The per-query comparison of ValidRTF against the revised MaxMatch —
/// one data point of Figures 5 and 6.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Number of RTFs (the "RTFs" line of Figure 5).
    pub rtf_count: usize,
    /// ValidRTF elapsed time.
    pub valid_rtf_time: Duration,
    /// Revised MaxMatch elapsed time.
    pub max_match_time: Duration,
    /// CFR / APR / APR' / Max APR (Figure 6).
    pub effectiveness: Effectiveness,
}

/// The storage behind an engine: a parsed tree with its in-memory
/// inverted index, or any [`CorpusSource`] backend (shredded tables,
/// an `xks-persist` on-disk index, …).
#[derive(Debug)]
enum Backend {
    Tree { tree: XmlTree, index: InvertedIndex },
    Source(Box<dyn CorpusSource>),
}

/// Document + index, ready to answer keyword queries.
///
/// The engine owns a [`QueryScratch`] reused across queries (behind a
/// `RefCell`, so `search` stays `&self`): a warm engine's anchor
/// pipeline runs without heap allocation.
#[derive(Debug)]
pub struct SearchEngine {
    backend: Backend,
    scratch: RefCell<QueryScratch>,
}

impl SearchEngine {
    /// Builds the engine from a parsed tree (index construction happens
    /// here).
    #[must_use]
    pub fn new(tree: XmlTree) -> Self {
        let index = InvertedIndex::build(&tree);
        SearchEngine {
            backend: Backend::Tree { tree, index },
            scratch: RefCell::new(QueryScratch::default()),
        }
    }

    /// Builds the engine over a [`CorpusSource`] backend. ValidRTF /
    /// MaxMatch then run against the source's stored postings and node
    /// facts — identical results to the tree path for the same corpus,
    /// without requiring the parsed document in memory.
    #[must_use]
    pub fn from_source(source: impl CorpusSource + 'static) -> Self {
        SearchEngine {
            backend: Backend::Source(Box::new(source)),
            scratch: RefCell::new(QueryScratch::default()),
        }
    }

    /// The underlying document.
    ///
    /// # Panics
    /// Panics for engines built with [`SearchEngine::from_source`]
    /// (there is no parsed tree); use [`SearchEngine::corpus`] instead.
    #[must_use]
    pub fn tree(&self) -> &XmlTree {
        match &self.backend {
            Backend::Tree { tree, .. } => tree,
            Backend::Source(_) => {
                panic!("SearchEngine::tree() on a source-backed engine")
            }
        }
    }

    /// The underlying inverted index.
    ///
    /// # Panics
    /// Panics for engines built with [`SearchEngine::from_source`];
    /// use [`SearchEngine::corpus`] instead.
    #[must_use]
    pub fn index(&self) -> &InvertedIndex {
        match &self.backend {
            Backend::Tree { index, .. } => index,
            Backend::Source(_) => {
                panic!("SearchEngine::index() on a source-backed engine")
            }
        }
    }

    /// The corpus source for source-backed engines (`None` for
    /// tree-backed ones).
    #[must_use]
    pub fn corpus(&self) -> Option<&dyn CorpusSource> {
        match &self.backend {
            Backend::Tree { .. } => None,
            Backend::Source(source) => Some(source.as_ref()),
        }
    }

    /// Runs one algorithm on one query.
    #[must_use]
    pub fn search(&self, query: &Query, kind: AlgorithmKind) -> SearchResult {
        let scratch = &mut *self.scratch.borrow_mut();
        let output = match &self.backend {
            Backend::Tree { tree, index } => crate::algorithms::run_query_tree(
                tree,
                index,
                query,
                kind.anchor(),
                kind.policy(),
                scratch,
            ),
            Backend::Source(source) => crate::algorithms::run_query_source(
                source.as_ref(),
                query,
                kind.anchor(),
                kind.policy(),
                scratch,
            ),
        };
        match output {
            Some((fragments, timings)) => SearchResult { fragments, timings },
            None => SearchResult {
                fragments: Vec::new(),
                timings: StageTimings::default(),
            },
        }
    }

    /// Runs one algorithm and returns the fragments **ranked best
    /// first** (the §7 future-work stage; see [`mod@crate::rank`]).
    #[must_use]
    pub fn search_ranked(
        &self,
        query: &Query,
        kind: AlgorithmKind,
        weights: &crate::rank::RankWeights,
    ) -> SearchResult {
        let mut out = self.search(query, kind);
        let order = crate::rank::rank(&out.fragments, query.len(), weights);
        out.fragments = order
            .iter()
            .map(|r| out.fragments[r.index].clone())
            .collect();
        out
    }

    /// Runs ValidRTF and revised MaxMatch on the same query and computes
    /// the Figure 5/6 data point.
    #[must_use]
    pub fn compare(&self, query: &Query) -> Comparison {
        let valid = self.search(query, AlgorithmKind::ValidRtf);
        let mm = self.search(query, AlgorithmKind::MaxMatchRtf);
        debug_assert_eq!(valid.fragments.len(), mm.fragments.len());
        let pairs: Vec<(Fragment, Fragment)> = valid
            .fragments
            .iter()
            .cloned()
            .zip(mm.fragments.iter().cloned())
            .collect();
        Comparison {
            rtf_count: valid.fragments.len(),
            valid_rtf_time: valid.timings.total(),
            max_match_time: mm.timings.total(),
            effectiveness: effectiveness(&pairs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xks_xmltree::fixtures::{publications, team, PAPER_QUERIES};

    fn q(s: &str) -> Query {
        Query::parse(s).unwrap()
    }

    #[test]
    fn engine_answers_paper_queries() {
        let engine = SearchEngine::new(publications());
        let r = engine.search(&q(PAPER_QUERIES[2]), AlgorithmKind::ValidRtf);
        assert_eq!(r.fragments.len(), 1);
        assert_eq!(r.fragments[0].len(), 8); // Figure 2(d)
    }

    #[test]
    fn compare_produces_figure6_point() {
        let engine = SearchEngine::new(team());
        let c = engine.compare(&q("grizzlies position"));
        assert_eq!(c.rtf_count, 1);
        assert_eq!(c.effectiveness.cfr, 0.0);
        assert!(c.effectiveness.max_apr > 0.2);
    }

    #[test]
    fn unmatched_query_is_empty_not_panic() {
        let engine = SearchEngine::new(team());
        let r = engine.search(&q("nonexistent"), AlgorithmKind::ValidRtf);
        assert!(r.fragments.is_empty());
        let c = engine.compare(&q("nonexistent"));
        assert_eq!(c.rtf_count, 0);
        assert_eq!(c.effectiveness.cfr, 1.0);
    }

    #[test]
    fn search_ranked_orders_best_first() {
        let engine = SearchEngine::new(publications());
        let out = engine.search_ranked(
            &q("liu keyword"),
            AlgorithmKind::ValidRtf,
            &crate::rank::RankWeights::default(),
        );
        assert_eq!(out.fragments.len(), 2);
        // The tight single-node ref fragment ranks above the article.
        assert_eq!(out.fragments[0].anchor.to_string(), "0.2.0.3.0");
    }

    #[test]
    fn slca_variant_returns_subset_of_anchors() {
        let engine = SearchEngine::new(publications());
        let slca = engine.search(&q("liu keyword"), AlgorithmKind::MaxMatchSlca);
        let all = engine.search(&q("liu keyword"), AlgorithmKind::MaxMatchRtf);
        assert!(slca.fragments.len() <= all.fragments.len());
        for f in &slca.fragments {
            assert!(all.fragments.iter().any(|g| g.anchor == f.anchor));
        }
    }
}
