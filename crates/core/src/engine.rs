//! The search engine: one object owning document + index, executing
//! [`SearchRequest`]s through a single pipeline and producing the §5.1
//! comparison in one call.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use xks_index::{InvertedIndex, KeywordNodeSets, Query, QuerySpec};
use xks_obs::{Counter, Histogram, Stage};
use xks_xmltree::{Dewey, XmlTree};

use crate::algorithms::{AnchorExec, AnchorSemantics, StageTimings};
use crate::fragment::Fragment;
use crate::metrics::{effectiveness, Effectiveness};
use crate::plan::{choose_driver, choose_strategy, PlanReport, PlanStrategy};
use crate::prune::{prune_owned, Policy};
use crate::rank::RankedFragment;
use crate::request::{Hit, SearchError, SearchRequest, SearchResponse, SearchStats, SearchTimeout};
use crate::scratch::QueryContext;
use crate::shards::ShardSet;
use crate::source::CorpusSource;

/// Which end-to-end algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// ValidRTF: all interesting LCAs + valid-contributor pruning.
    ValidRtf,
    /// Revised MaxMatch: all interesting LCAs + contributor pruning.
    MaxMatchRtf,
    /// Original MaxMatch: SLCA anchors + contributor pruning.
    MaxMatchSlca,
}

impl AlgorithmKind {
    fn anchor(self) -> AnchorSemantics {
        match self {
            AlgorithmKind::MaxMatchSlca => AnchorSemantics::SlcaOnly,
            _ => AnchorSemantics::AllLca,
        }
    }

    fn policy(self) -> Policy {
        match self {
            AlgorithmKind::ValidRtf => Policy::ValidContributor,
            _ => Policy::Contributor,
        }
    }
}

/// A search result: fragments plus timing.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The meaningful fragments.
    pub fragments: Vec<Fragment>,
    /// Elapsed time, broken down per stage.
    pub timings: StageTimings,
}

/// The per-query comparison of ValidRTF against the revised MaxMatch —
/// one data point of Figures 5 and 6.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Number of RTFs (the "RTFs" line of Figure 5).
    pub rtf_count: usize,
    /// ValidRTF elapsed time.
    pub valid_rtf_time: Duration,
    /// Revised MaxMatch elapsed time.
    pub max_match_time: Duration,
    /// CFR / APR / APR' / Max APR (Figure 6).
    pub effectiveness: Effectiveness,
}

/// The storage behind an engine: a parsed tree with its in-memory
/// inverted index, any [`CorpusSource`] backend (shredded tables, an
/// `xks-persist` on-disk index, …), or a [`ShardSet`] searched with
/// scatter-gather (keyword resolution fanned out per shard, fragment
/// construction fanned out per RTF, anchors computed globally — see
/// [`crate::shards`] for why that split is what keeps sharded results
/// byte-identical).
#[derive(Debug)]
enum Backend {
    Tree {
        tree: XmlTree,
        index: InvertedIndex,
    },
    Source(Arc<dyn CorpusSource>),
    Sharded {
        set: Arc<ShardSet>,
        /// Worker threads each scatter stage fans out to (1 = inline).
        threads: usize,
    },
}

/// Document + index, ready to answer keyword queries.
///
/// `SearchEngine` is the shared **immutable** half of the read path —
/// it is `Send + Sync` and designed to be queried from many threads at
/// once (see [`crate::executor`]). All per-query mutable state lives in
/// a [`QueryContext`]:
///
/// * [`SearchEngine::search_with`] takes an explicit `&mut
///   QueryContext` — the per-thread, lock-free path the concurrent
///   executor uses;
/// * [`SearchEngine::search`] keeps the convenient `&self` signature by
///   checking a context in and out of a small internal pool (one
///   uncontended `Mutex` lock per query, never held across the query).
///
/// A warm context answers queries without heap allocation in the
/// anchor pipeline (asserted by the workspace's counting-allocator
/// test).
#[derive(Debug)]
pub struct SearchEngine {
    backend: Backend,
    /// Pool of warm contexts for the `&self` entry points. Capped so a
    /// burst of threads cannot pin unbounded scratch memory.
    contexts: Mutex<Vec<QueryContext>>,
    /// Handles into the global metrics registry, resolved once at
    /// construction so the per-query recording path is pure lock-free
    /// atomics (see [`EngineMetrics`]).
    metrics: EngineMetrics,
}

/// Most contexts a [`SearchEngine`] keeps warm for its `&self` entry
/// points; checked-in contexts beyond this are dropped.
const CONTEXT_POOL_CAP: usize = 64;

impl SearchEngine {
    /// Builds the engine from a parsed tree (index construction happens
    /// here).
    #[must_use]
    pub fn new(tree: XmlTree) -> Self {
        let index = InvertedIndex::build(&tree);
        SearchEngine {
            backend: Backend::Tree { tree, index },
            contexts: Mutex::new(Vec::new()),
            metrics: EngineMetrics::from_global(),
        }
    }

    /// Builds the engine over a **shared** [`CorpusSource`] backend —
    /// the index-handle form: one opened corpus (e.g. an
    /// `xks_persist::IndexReader` with its buffer pool and caches) can
    /// back any number of engines and outside observers without
    /// reopening the file. ValidRTF / MaxMatch run against the source's
    /// stored postings and node facts — identical results to the tree
    /// path for the same corpus, without requiring the parsed document
    /// in memory.
    #[must_use]
    pub fn from_source(source: Arc<dyn CorpusSource>) -> Self {
        SearchEngine {
            backend: Backend::Source(source),
            contexts: Mutex::new(Vec::new()),
            metrics: EngineMetrics::from_global(),
        }
    }

    /// Convenience form of [`SearchEngine::from_source`] for callers
    /// that don't need to keep a handle on the source: wraps an owned
    /// corpus in an `Arc` internally.
    #[must_use]
    pub fn from_owned_source(source: impl CorpusSource + 'static) -> Self {
        Self::from_source(Arc::new(source))
    }

    /// Builds the engine over a sharded corpus, searched with
    /// **scatter-gather**: keyword resolution fans out one task per
    /// (keyword × shard) and fragment construction one task per RTF,
    /// both over the work-stealing cursor pattern of
    /// [`crate::executor`] with warm [`QueryContext`]s drawn from the
    /// engine pool; the anchor stages stay a single global pass, which
    /// is what keeps results byte-identical to the unsharded engine
    /// (see [`crate::shards`]).
    ///
    /// The fan-out defaults to
    /// `min(shard count, available parallelism)`; override it with
    /// [`SearchEngine::with_scatter_threads`] (1 runs every stage
    /// inline — same results, no spawns).
    ///
    /// Cost model: each scattered stage spawns scoped OS threads per
    /// query (there is no persistent worker pool yet), so the fan-out
    /// pays a fixed ~tens-of-µs spawn/join cost per query. That is
    /// noise for disk-bound or large queries — the scatter's target —
    /// but can dominate sub-100µs warm in-memory queries; set the
    /// fan-out to 1 for those (or batch them through
    /// [`crate::executor::run_batch`], which amortizes its spawns over
    /// the whole batch and leaves per-query scatter off by default
    /// when you pass `with_scatter_threads(1)` engines).
    #[must_use]
    pub fn from_shard_set(set: ShardSet) -> Self {
        let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let threads = set.shard_count().min(parallelism).max(1);
        SearchEngine {
            backend: Backend::Sharded {
                set: Arc::new(set),
                threads,
            },
            contexts: Mutex::new(Vec::new()),
            metrics: EngineMetrics::from_global(),
        }
    }

    /// Overrides the scatter fan-out of a sharded engine (clamped to
    /// ≥ 1; no-op for unsharded backends). Note the fan-out is *per
    /// query*: a batch run through [`crate::executor::run_batch`] with
    /// `T` worker threads over a sharded engine with `S` scatter
    /// threads may run up to `T × S` workers at once.
    #[must_use]
    pub fn with_scatter_threads(mut self, threads: usize) -> Self {
        if let Backend::Sharded { threads: t, .. } = &mut self.backend {
            *t = threads.max(1);
        }
        self
    }

    /// The scatter fan-out of a sharded engine (`None` for unsharded
    /// backends).
    #[must_use]
    pub fn scatter_threads(&self) -> Option<usize> {
        match &self.backend {
            Backend::Sharded { threads, .. } => Some(*threads),
            _ => None,
        }
    }

    /// The shard set of a sharded engine (`None` otherwise).
    #[must_use]
    pub fn shard_set(&self) -> Option<&ShardSet> {
        match &self.backend {
            Backend::Sharded { set, .. } => Some(set),
            _ => None,
        }
    }

    /// The underlying document.
    ///
    /// # Panics
    /// Panics for engines built with [`SearchEngine::from_source`]
    /// (there is no parsed tree); use [`SearchEngine::corpus`] instead.
    #[must_use]
    pub fn tree(&self) -> &XmlTree {
        match &self.backend {
            Backend::Tree { tree, .. } => tree,
            Backend::Source(_) | Backend::Sharded { .. } => {
                panic!("SearchEngine::tree() on a source-backed engine")
            }
        }
    }

    /// The underlying inverted index.
    ///
    /// # Panics
    /// Panics for engines built with [`SearchEngine::from_source`];
    /// use [`SearchEngine::corpus`] instead.
    #[must_use]
    pub fn index(&self) -> &InvertedIndex {
        match &self.backend {
            Backend::Tree { index, .. } => index,
            Backend::Source(_) | Backend::Sharded { .. } => {
                panic!("SearchEngine::index() on a source-backed engine")
            }
        }
    }

    /// The corpus source for source-backed engines (`None` for
    /// tree-backed ones). Sharded engines expose their [`ShardSet`] —
    /// itself a routing [`CorpusSource`] over the whole corpus.
    #[must_use]
    pub fn corpus(&self) -> Option<&dyn CorpusSource> {
        match &self.backend {
            Backend::Tree { .. } => None,
            Backend::Source(source) => Some(source.as_ref()),
            Backend::Sharded { set, .. } => Some(set.as_ref() as &dyn CorpusSource),
        }
    }

    /// Executes a [`SearchRequest`] — **the** entry point of the read
    /// path. Checks a warm [`QueryContext`] out of the engine's pool
    /// (one short `Mutex` lock each way; the query itself runs
    /// lock-free) and delegates to [`SearchEngine::execute_with`].
    pub fn execute(&self, request: &SearchRequest) -> Result<SearchResponse, SearchError> {
        let mut ctx = self.checkout_context();
        let result = self.execute_with(request, &mut ctx);
        self.checkin_context(ctx);
        result
    }

    /// Executes a [`SearchRequest`] with a caller-owned per-thread
    /// [`QueryContext`] — the lock-free path the concurrent
    /// [`crate::executor`] drives. Threads sharing one engine each
    /// bring their own context; the warm zero-allocation anchor
    /// pipeline of the legacy path is preserved unchanged (same
    /// [`QueryContext`] scratch, same staged
    /// `getKeywordNodes → getLCA → getRTF → pruneRTF` flow; asserted by
    /// the workspace's counting-allocator test).
    ///
    /// Every failure comes back typed: grammar errors as
    /// [`SearchError::Parse`] (from [`SearchRequest::parse`]), backend
    /// I/O and index corruption as [`SearchError::Backend`]. No query
    /// path panics.
    pub fn execute_with(
        &self,
        request: &SearchRequest,
        ctx: &mut QueryContext,
    ) -> Result<SearchResponse, SearchError> {
        let spec = request.spec();
        let kind = request.kind();
        let traced = request.traced();
        if traced {
            ctx.trace.begin();
            // Parsing happened before execution; re-base its measured
            // duration at the trace origin so the span survives.
            if request.parse_time_ns() > 0 {
                ctx.trace
                    .record_manual(Stage::Parse, 0, request.parse_time_ns());
            }
        } else {
            // A pooled context must never leak the previous query's
            // spans into this response.
            ctx.trace.disarm();
        }
        let mut stats = SearchStats {
            dropped_terms: spec.report().dropped.clone(),
            normalized_terms: spec.report().normalized.clone(),
            ..SearchStats::default()
        };
        let mut timings = StageTimings::default();

        // Deadline hook: requests carrying a deadline are checked
        // between stages (never mid-stage, so a check costs one
        // `Instant::now()` and only when a deadline exists). A request
        // that was queued past its budget dies here before touching
        // storage.
        let deadline = request.deadline();
        let exec_start = Instant::now();
        self.check_deadline(deadline, exec_start, "resolve", &stats)?;

        // getKeywordNodes — the one stage that touches cold storage
        // (scattered across shards on sharded backends; the recorded
        // timing is the wall clock of the whole fan-out). Traced
        // queries resolve keyword by keyword so each postings decode
        // gets its own span: byte-identical results (the default
        // `try_resolve` is this same loop, and a sharded set's serial
        // routed resolution is proven identical to the scatter by the
        // sharded differential test), at the cost of the scatter's
        // parallelism for that one query.
        let t0 = Instant::now();
        let resolved = match &self.backend {
            Backend::Tree { index, .. } => index.resolve(spec.query()),
            Backend::Source(source) if traced => {
                resolve_traced(source.as_ref(), spec.query(), ctx)?
            }
            Backend::Source(source) => source.try_resolve(spec.query())?,
            Backend::Sharded { set, .. } if traced => {
                resolve_traced(set.as_ref(), spec.query(), ctx)?
            }
            Backend::Sharded { set, threads } => crate::shards::scatter_resolve(
                self,
                set,
                *threads,
                spec.query(),
                &mut stats.shards_skipped,
            )?,
        };
        timings.get_keyword_nodes = t0.elapsed();
        ctx.trace.record_since(Stage::Resolve, t0);
        let Some(sets) = resolved else {
            // Some keyword matches nothing: empty result, not an error.
            self.metrics.observe(&timings, &stats, 0);
            let mut response = SearchResponse::empty(timings, stats);
            response.trace = take_trace(ctx, traced);
            return Ok(response);
        };

        self.check_deadline(deadline, exec_start, "anchor", &stats)?;

        // Plan: pick the anchor-pass strategy from the resolved list
        // lengths and the backend's sealed statistics (scalars only —
        // the warm path stays allocation-free).
        let t_plan = Instant::now();
        let exec = self.plan_anchor_exec(&sets, &mut stats);
        ctx.trace.record_since(Stage::Plan, t_plan);

        // getLCA + getRTF over the context's shared scratch buffers.
        let rtfs = crate::algorithms::anchor_stages(&sets, kind.anchor(), exec, &mut timings, ctx);
        self.check_deadline(deadline, exec_start, "construct", &stats)?;

        // Top-k bound skip: when the request is a plain ranked top-k,
        // construct fragments best-bound-first and never build the
        // ones that provably miss the cut. Results are identical to
        // the legacy construct-everything path (see
        // `construct_bounded_topk`); only the work differs.
        if let Some((k_limit, weights)) = self.topk_bound_gate(request, spec, traced) {
            let t = Instant::now();
            stats.total_before_top_k = rtfs.len();
            stats.truncated = rtfs.len() > k_limit;
            let hits = self.construct_bounded_topk(
                &rtfs,
                kind.policy(),
                spec.query().len(),
                k_limit,
                &weights,
                &mut stats,
            )?;
            timings.prune_rtf = t.elapsed();
            self.metrics.observe(&timings, &stats, hits.len());
            return Ok(SearchResponse {
                hits,
                timings,
                stats,
                trace: take_trace(ctx, traced),
            });
        }

        // pruneRTF — construct + prune, consuming the raw fragment so
        // no node payload is deep-cloned. Sharded backends fan the
        // per-RTF work out; gather preserves anchor document order.
        let t = Instant::now();
        let mut fragments;
        match &self.backend {
            Backend::Tree { tree, .. } => {
                fragments = Vec::with_capacity(rtfs.len());
                if traced {
                    construct_prune_traced(
                        &rtfs,
                        kind.policy(),
                        |rtf| Ok(Fragment::construct(tree, rtf)),
                        &mut fragments,
                        ctx,
                        t,
                    )?;
                } else {
                    for rtf in &rtfs {
                        fragments.push(prune_owned(Fragment::construct(tree, rtf), kind.policy()));
                    }
                }
            }
            Backend::Source(source) => {
                fragments = Vec::with_capacity(rtfs.len());
                if traced {
                    construct_prune_traced(
                        &rtfs,
                        kind.policy(),
                        |rtf| {
                            Fragment::try_construct_from_source(source.as_ref(), rtf)
                                .map_err(SearchError::from)
                        },
                        &mut fragments,
                        ctx,
                        t,
                    )?;
                } else {
                    for rtf in &rtfs {
                        let raw = Fragment::try_construct_from_source(source.as_ref(), rtf)?;
                        fragments.push(prune_owned(raw, kind.policy()));
                    }
                }
            }
            Backend::Sharded { set, threads } => {
                fragments =
                    crate::shards::scatter_construct(self, set, *threads, &rtfs, kind.policy())?;
                // The fan-out interleaves construct and prune per
                // worker, so the trace gets one combined span.
                ctx.trace.record_since(Stage::Construct, t);
            }
        }
        timings.prune_rtf = t.elapsed();
        self.check_deadline(deadline, exec_start, "post_process", &stats)?;

        // Everything past the paper's pipeline is timed as the
        // post-process stage: the operator filters (whose exclusion
        // lookups are real backend reads), ranking, and hit assembly.
        let t = Instant::now();

        // Operator post-filter stage: phrases, label filters,
        // exclusions (no-op for plain keyword queries, which therefore
        // reproduce the legacy path byte for byte).
        if !spec.is_plain() && !fragments.is_empty() {
            let before = fragments.len();
            self.apply_post_filters(spec, &sets, &mut fragments)?;
            stats.filtered_out = before - fragments.len();
            ctx.trace.record_since(Stage::PostFilter, t);
        }
        let t_rank = Instant::now();

        // Shape the response: cap, rank, truncate, materialize hits.
        stats.total_before_top_k = fragments.len();
        if let Some(cap) = request.max_fragments_cap() {
            if fragments.len() > cap {
                fragments.truncate(cap);
                stats.truncated = true;
            }
        }
        let hits = match request.effective_weights() {
            Some(weights) => {
                let mut order = crate::rank::rank(&fragments, spec.query().len(), &weights);
                if let Some(k) = request.top_k_limit() {
                    if order.len() > k {
                        order.truncate(k);
                        stats.truncated = true;
                    }
                }
                take_ranked(fragments, &order)
            }
            None => fragments
                .into_iter()
                .map(|fragment| Hit {
                    fragment,
                    score: None,
                    signals: None,
                })
                .collect(),
        };
        timings.post_process = t.elapsed();
        ctx.trace.record_since(Stage::Rank, t_rank);
        self.metrics.observe(&timings, &stats, hits.len());
        Ok(SearchResponse {
            hits,
            timings,
            stats,
            trace: take_trace(ctx, traced),
        })
    }

    /// The between-stage deadline check: free for requests without a
    /// deadline, one `Instant::now()` otherwise. An expired deadline
    /// becomes a typed [`SearchError::Timeout`] carrying the stats
    /// accumulated so far (partial — enough for a server's `503` body)
    /// and bumps the global `search.deadline_exceeded` counter.
    fn check_deadline(
        &self,
        deadline: Option<Instant>,
        started: Instant,
        stage: &'static str,
        stats: &SearchStats,
    ) -> Result<(), SearchError> {
        let Some(deadline) = deadline else {
            return Ok(());
        };
        let now = Instant::now();
        if now < deadline {
            return Ok(());
        }
        self.metrics.deadline_exceeded.inc();
        Err(SearchError::Timeout(Box::new(SearchTimeout {
            stage,
            elapsed: now.saturating_duration_since(started),
            stats: stats.clone(),
        })))
    }

    /// Chooses the anchor-pass execution — legacy k-way merge or the
    /// planner's rarest-first gallop — from the resolved list lengths
    /// and the backend's sealed statistics, recording the choice in
    /// `stats`. Scalar-only on purpose: lengths land in a fixed stack
    /// array (queries carry ≤ 64 keywords — the `KeySet` mask width),
    /// so the warm path performs no allocation here.
    fn plan_anchor_exec(&self, sets: &KeywordNodeSets, stats: &mut SearchStats) -> AnchorExec {
        let lists = sets.sets();
        let k = lists.len();
        let mut lens = [0usize; 64];
        for (slot, list) in lens.iter_mut().zip(lists) {
            *slot = list.len();
        }
        stats.plan_postings = lists.iter().map(|l| l.len() as u64).sum();
        if !(2..=64).contains(&k) {
            return AnchorExec::Merge;
        }
        let lens = &lens[..k];
        // Sealed means every term has authoritative stored statistics.
        // The tree backend's in-memory index is authoritative by
        // construction; sources answer per keyword (`None` = unknown,
        // e.g. a mutable delta touched the term → whole query merges).
        let all_sealed = match &self.backend {
            Backend::Tree { .. } => true,
            Backend::Source(source) => sets
                .query()
                .keywords()
                .iter()
                .all(|kw| source.keyword_stats(kw).is_some()),
            Backend::Sharded { set, .. } => sets
                .query()
                .keywords()
                .iter()
                .all(|kw| set.keyword_stats(kw).is_some()),
        };
        match choose_strategy(lens, all_sealed) {
            PlanStrategy::FullMerge => AnchorExec::Merge,
            PlanStrategy::Gallop => {
                let driver = choose_driver(lens);
                stats.plan_strategy = PlanStrategy::Gallop;
                stats.plan_driver = driver as u32;
                AnchorExec::Gallop { driver }
            }
        }
    }

    /// Whether this request qualifies for bound-ordered top-k
    /// construction (skipping fragments that provably miss the top k):
    /// a ranked `top_k ≥ 1` over a plain query with no `max_fragments`
    /// cap, untraced, on an unsharded backend (the scatter path keeps
    /// its own fan-out), with non-negative weights summing above zero
    /// (negative weights would invert the score bound). Returns the
    /// limit and the effective weights.
    fn topk_bound_gate(
        &self,
        request: &SearchRequest,
        spec: &QuerySpec,
        traced: bool,
    ) -> Option<(usize, crate::rank::RankWeights)> {
        if traced
            || !spec.is_plain()
            || request.max_fragments_cap().is_some()
            || matches!(self.backend, Backend::Sharded { .. })
        {
            return None;
        }
        let k = request.top_k_limit().filter(|&k| k >= 1)?;
        let weights = request.effective_weights()?;
        let wsum = weights.specificity + weights.compactness + weights.density;
        if weights.specificity < 0.0
            || weights.compactness < 0.0
            || weights.density < 0.0
            || wsum <= 0.0
        {
            return None;
        }
        Some((k, weights))
    }

    /// Constructs + prunes + scores fragments in descending order of
    /// their score **upper bound**, skipping every RTF whose bound
    /// falls strictly below the current k-th best score once `k_limit`
    /// fragments exist. Returns hits best-first, truncated to
    /// `k_limit` — byte-identical to construct-everything-then-rank:
    ///
    /// * the bound uses the **global** `max_depth` over all RTF anchors
    ///   (exactly [`crate::rank::rank`]'s normalizer, since every RTF
    ///   becomes a fragment on the legacy path and anchors survive
    ///   construction unchanged);
    /// * specificity is exact, compactness is bounded by 1, density by
    ///   the best per-node keyword share (pruning only removes nodes,
    ///   and the average of shares never exceeds their maximum);
    /// * the `1e-9` margin absorbs rounding differences between the
    ///   bound expression and [`crate::rank::score_fragment`], so a
    ///   skip implies a strictly lower true score — under the
    ///   score-desc / index-asc tiebreak, no skipped fragment can
    ///   displace a constructed one from the top k.
    fn construct_bounded_topk(
        &self,
        rtfs: &[crate::rtf::Rtf],
        policy: Policy,
        k_query: usize,
        k_limit: usize,
        weights: &crate::rank::RankWeights,
        stats: &mut SearchStats,
    ) -> Result<Vec<Hit>, SearchError> {
        let max_depth = rtfs
            .iter()
            .map(|r| r.anchor.level())
            .max()
            .unwrap_or(0)
            .max(1) as f64;
        let wsum = weights.specificity + weights.compactness + weights.density;
        let bound = |r: &crate::rtf::Rtf| -> f64 {
            let specificity = r.anchor.level() as f64 / max_depth;
            let density_max = r
                .knodes
                .iter()
                .map(|(_, kset)| kset.len() as f64 / k_query.max(1) as f64)
                .fold(0.0f64, f64::max);
            (weights.specificity * specificity
                + weights.compactness
                + weights.density * density_max)
                / wsum
                + 1e-9
        };
        let mut order: Vec<(usize, f64)> = rtfs
            .iter()
            .enumerate()
            .map(|(i, r)| (i, bound(r)))
            .collect();
        order.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });

        // (original index, score, signals, fragment) of everything
        // built; `top_scores` tracks the k best scores descending.
        let mut built: Vec<(usize, f64, [f64; 3], Fragment)> = Vec::new();
        let mut top_scores: Vec<f64> = Vec::with_capacity(k_limit);
        for (i, ub) in order {
            if top_scores.len() == k_limit && ub < top_scores[k_limit - 1] {
                stats.rtfs_skipped_topk += 1;
                continue;
            }
            let raw = match &self.backend {
                Backend::Tree { tree, .. } => Fragment::construct(tree, &rtfs[i]),
                Backend::Source(source) => {
                    Fragment::try_construct_from_source(source.as_ref(), &rtfs[i])?
                }
                Backend::Sharded { .. } => {
                    unreachable!("bounded top-k is gated off sharded backends")
                }
            };
            let fragment = prune_owned(raw, policy);
            let (score, signals) =
                crate::rank::score_fragment(&fragment, k_query, weights, max_depth);
            let pos = top_scores.partition_point(|&s| s >= score);
            if pos < k_limit {
                top_scores.insert(pos, score);
                top_scores.truncate(k_limit);
            }
            built.push((i, score, signals, fragment));
        }
        built.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        built.truncate(k_limit);
        Ok(built
            .into_iter()
            .map(|(_, score, signals, fragment)| Hit {
                fragment,
                score: Some(score),
                signals: Some(signals),
            })
            .collect())
    }

    /// Explains how the planner would execute `request` against this
    /// backend **without running it**: per-term postings/doc-frequency
    /// statistics in rarest-first order, the gallop-vs-merge choice,
    /// and per-term shard-filter skips (see [`PlanReport`] and the
    /// `xks explain` CLI subcommand).
    pub fn explain(&self, request: &SearchRequest) -> Result<PlanReport, SearchError> {
        let query = request.query();
        let report = match &self.backend {
            Backend::Tree { index, .. } => {
                let mut terms = Vec::with_capacity(query.len());
                let mut lens = Vec::with_capacity(query.len());
                for kw in query.keywords() {
                    let postings = index.postings(kw);
                    lens.push(postings.len());
                    terms.push(crate::plan::TermPlan {
                        keyword: kw.clone(),
                        postings: postings.len() as u64,
                        doc_freq: Some(crate::plan::doc_frequency(postings)),
                        sealed: true,
                        shards_skipped: 0,
                    });
                }
                let strategy = choose_strategy(&lens, true);
                terms.sort_by(|a, b| a.postings.cmp(&b.postings).then(a.keyword.cmp(&b.keyword)));
                PlanReport {
                    terms,
                    strategy,
                    shards: 0,
                }
            }
            Backend::Source(source) => PlanReport::build(source.as_ref(), query, 0, |_| 0)?,
            Backend::Sharded { set, .. } => {
                PlanReport::build(set.as_ref(), query, set.shard_count() as u32, |kw| {
                    set.shard_skips(kw)
                })?
            }
        };
        Ok(report)
    }

    /// Drops every fragment violating an operator constraint. Phrases
    /// demand one keyword node whose own content matches the whole
    /// group; label filters demand the constrained keyword be matched
    /// by a node with that label; exclusions reject any fragment whose
    /// anchor subtree contains the excluded word.
    fn apply_post_filters(
        &self,
        spec: &QuerySpec,
        sets: &KeywordNodeSets,
        fragments: &mut Vec<Fragment>,
    ) -> Result<(), SearchError> {
        use std::borrow::Cow;
        use std::collections::HashMap;

        let phrase_masks: Vec<u64> = spec
            .phrases()
            .iter()
            .map(|group| group.iter().fold(0u64, |m, &p| m | (1 << p)))
            .collect();
        // Excluded keywords resolve like any other keyword; an absent
        // word simply excludes nothing. The tree backend's postings are
        // borrowed — only sources that hand out owned lists pay a copy.
        let mut exclusion_postings: Vec<Cow<'_, [Dewey]>> =
            Vec::with_capacity(spec.exclusions().len());
        for word in spec.exclusions() {
            let list = match &self.backend {
                Backend::Tree { index, .. } => Cow::Borrowed(index.postings(word)),
                Backend::Source(source) => Cow::Owned(source.try_keyword_deweys(word)?),
                Backend::Sharded { set, .. } => Cow::Owned(set.try_keyword_deweys(word)?),
            };
            exclusion_postings.push(list);
        }
        // Label-name lookups cross the backend and lowercase a string;
        // memoize per (filter, label id) so the walk below does integer
        // compares after the first sighting of each label.
        let mut label_memos: Vec<HashMap<u32, bool>> =
            vec![HashMap::new(); spec.label_filters().len()];
        // Per-fragment satisfaction flags, hoisted so retain reuses the
        // buffers.
        let mut phrase_ok: Vec<bool> = Vec::new();
        let mut filter_ok: Vec<bool> = Vec::new();
        fragments.retain(|fragment| {
            phrase_ok.clear();
            phrase_ok.resize(phrase_masks.len(), false);
            filter_ok.clear();
            filter_ok.resize(spec.label_filters().len(), false);
            // One keyword-mask computation per node (it costs k binary
            // searches over the posting lists), checked against every
            // constraint in the same walk.
            for n in fragment.iter() {
                if !n.is_keyword {
                    continue;
                }
                let mask = sets.keyword_mask(&n.dewey);
                for (ok, &group) in phrase_ok.iter_mut().zip(&phrase_masks) {
                    if !*ok && mask & group == group {
                        *ok = true;
                    }
                }
                for ((ok, filter), memo) in filter_ok
                    .iter_mut()
                    .zip(spec.label_filters())
                    .zip(label_memos.iter_mut())
                {
                    if !*ok
                        && mask & (1 << filter.position) != 0
                        && *memo
                            .entry(n.label.as_u32())
                            .or_insert_with(|| self.label_name_matches(n.label, &filter.label))
                    {
                        *ok = true;
                    }
                }
            }
            phrase_ok.iter().all(|&ok| ok)
                && filter_ok.iter().all(|&ok| ok)
                && !exclusion_postings
                    .iter()
                    .any(|list| subtree_contains(&fragment.anchor, list))
        });
        Ok(())
    }

    /// Case-insensitive label comparison through whichever backend owns
    /// the label table (`want` is already lowercased by the grammar).
    fn label_name_matches(&self, label: xks_xmltree::LabelId, want: &str) -> bool {
        match &self.backend {
            Backend::Tree { tree, .. } => tree.labels().name(label).to_lowercase() == want,
            Backend::Source(source) => source
                .label_name(label.as_u32())
                .is_some_and(|name| name.to_lowercase() == want),
            Backend::Sharded { set, .. } => set
                .label_name(label.as_u32())
                .is_some_and(|name| name.to_lowercase() == want),
        }
    }

    /// Takes a warm context from the pool (or makes a fresh one). The
    /// executor's workers use this too, so batches stay warm across
    /// calls. A poisoned pool is recovered, not propagated: contexts
    /// are plain scratch buffers with no invariants a panic could
    /// break, so one panicked thread must not take down every
    /// subsequent `&self` query. Each recovery increments the global
    /// `lock.poison_recovered` counter so a wounded process is visible
    /// to operators.
    pub(crate) fn checkout_context(&self) -> QueryContext {
        self.contexts
            .lock()
            .unwrap_or_else(|e| {
                xks_obs::count_poison_recovery();
                e.into_inner()
            })
            .pop()
            .unwrap_or_default()
    }

    /// Returns a context to the pool, dropping it if the pool is full
    /// (same poison recovery as [`SearchEngine::checkout_context`]).
    pub(crate) fn checkin_context(&self, ctx: QueryContext) {
        let mut pool = self.contexts.lock().unwrap_or_else(|e| {
            xks_obs::count_poison_recovery();
            e.into_inner()
        });
        if pool.len() < CONTEXT_POOL_CAP {
            pool.push(ctx);
        }
    }

    /// Runs one algorithm on one query, reusing a pooled
    /// [`QueryContext`].
    #[deprecated(note = "build a `SearchRequest` and call `SearchEngine::execute`")]
    #[must_use]
    pub fn search(&self, query: &Query, kind: AlgorithmKind) -> SearchResult {
        let mut ctx = self.checkout_context();
        #[allow(deprecated)]
        let result = self.search_with(query, kind, &mut ctx);
        self.checkin_context(ctx);
        result
    }

    /// Runs one algorithm on one query with a caller-owned
    /// [`QueryContext`].
    ///
    /// # Panics
    /// Panics on backend errors — the legacy contract. Use
    /// [`SearchEngine::execute_with`] for typed errors.
    #[deprecated(note = "build a `SearchRequest` and call `SearchEngine::execute_with`")]
    #[must_use]
    pub fn search_with(
        &self,
        query: &Query,
        kind: AlgorithmKind,
        ctx: &mut QueryContext,
    ) -> SearchResult {
        let request = SearchRequest::from_query(query.clone()).algorithm(kind);
        match self.execute_with(&request, ctx) {
            Ok(response) => SearchResult {
                timings: response.timings,
                fragments: response.into_fragments(),
            },
            Err(e) => panic!("search failed: {e}"),
        }
    }

    /// Runs one algorithm and returns the fragments **ranked best
    /// first** (the §7 future-work stage; see [`mod@crate::rank`]).
    /// The rank permutation is applied by moving fragments, never by
    /// cloning them.
    ///
    /// # Panics
    /// Panics on backend errors — the legacy contract. Use
    /// [`SearchEngine::execute`] with
    /// [`SearchRequest::weights`] for typed errors.
    #[deprecated(
        note = "build a `SearchRequest` with `.weights(..)` and call `SearchEngine::execute`"
    )]
    #[must_use]
    pub fn search_ranked(
        &self,
        query: &Query,
        kind: AlgorithmKind,
        weights: &crate::rank::RankWeights,
    ) -> SearchResult {
        let request = SearchRequest::from_query(query.clone())
            .algorithm(kind)
            .weights(*weights);
        match self.execute(&request) {
            Ok(response) => SearchResult {
                timings: response.timings,
                fragments: response.into_fragments(),
            },
            Err(e) => panic!("search failed: {e}"),
        }
    }

    /// Runs ValidRTF and revised MaxMatch on the same query and computes
    /// the Figure 5/6 data point.
    pub fn compare(&self, query: &Query) -> Result<Comparison, SearchError> {
        let valid = self.execute(
            &SearchRequest::from_query(query.clone()).algorithm(AlgorithmKind::ValidRtf),
        )?;
        let mm = self.execute(
            &SearchRequest::from_query(query.clone()).algorithm(AlgorithmKind::MaxMatchRtf),
        )?;
        debug_assert_eq!(valid.hits.len(), mm.hits.len());
        let pairs: Vec<(Fragment, Fragment)> = valid
            .hits
            .iter()
            .zip(mm.hits.iter())
            .map(|(v, m)| (v.fragment.clone(), m.fragment.clone()))
            .collect();
        Ok(Comparison {
            rtf_count: valid.hits.len(),
            valid_rtf_time: valid.timings.total(),
            max_match_time: mm.timings.total(),
            effectiveness: effectiveness(&pairs),
        })
    }
}

/// Handles into the global [`xks_obs`] registry, resolved once per
/// engine so the per-query `observe` call is pure lock-free atomics —
/// no registry lock, no allocation, preserving the warm path's
/// zero-allocation contract. All engines in a process share the same
/// underlying metrics (they are keyed by name in [`xks_obs::global`]).
#[derive(Debug)]
struct EngineMetrics {
    queries: Counter,
    empty: Counter,
    hits: Counter,
    truncated: Counter,
    filtered_out: Counter,
    plan_gallop: Counter,
    plan_full_merge: Counter,
    plan_shards_skipped: Counter,
    plan_topk_skipped: Counter,
    deadline_exceeded: Counter,
    total_ns: Histogram,
    get_keyword_nodes_ns: Histogram,
    get_lca_ns: Histogram,
    get_rtf_ns: Histogram,
    prune_rtf_ns: Histogram,
    post_process_ns: Histogram,
}

impl EngineMetrics {
    fn from_global() -> Self {
        let registry = xks_obs::global();
        EngineMetrics {
            queries: registry.counter("search.queries"),
            empty: registry.counter("search.empty"),
            hits: registry.counter("search.hits"),
            truncated: registry.counter("search.truncated"),
            filtered_out: registry.counter("search.filtered_out"),
            plan_gallop: registry.counter("plan.gallop"),
            plan_full_merge: registry.counter("plan.full_merge"),
            plan_shards_skipped: registry.counter("plan.shards_skipped"),
            plan_topk_skipped: registry.counter("plan.topk_skipped"),
            deadline_exceeded: registry.counter("search.deadline_exceeded"),
            total_ns: registry.histogram("search.total_ns"),
            get_keyword_nodes_ns: registry.histogram("search.get_keyword_nodes_ns"),
            get_lca_ns: registry.histogram("search.get_lca_ns"),
            get_rtf_ns: registry.histogram("search.get_rtf_ns"),
            prune_rtf_ns: registry.histogram("search.prune_rtf_ns"),
            post_process_ns: registry.histogram("search.post_process_ns"),
        }
    }

    /// Records one finished query from its already-computed timings
    /// and stats — every query pays ~20 relaxed atomic RMWs here,
    /// traced or not.
    fn observe(&self, timings: &StageTimings, stats: &SearchStats, hits: usize) {
        self.queries.inc();
        if hits == 0 {
            self.empty.inc();
        }
        self.hits.add(hits as u64);
        if stats.truncated {
            self.truncated.inc();
        }
        self.filtered_out.add(stats.filtered_out as u64);
        match stats.plan_strategy {
            PlanStrategy::Gallop => self.plan_gallop.inc(),
            PlanStrategy::FullMerge => self.plan_full_merge.inc(),
        }
        self.plan_shards_skipped
            .add(u64::from(stats.shards_skipped));
        self.plan_topk_skipped
            .add(u64::from(stats.rtfs_skipped_topk));
        self.total_ns.record_duration(timings.total());
        self.get_keyword_nodes_ns
            .record_duration(timings.get_keyword_nodes);
        self.get_lca_ns.record_duration(timings.get_lca);
        self.get_rtf_ns.record_duration(timings.get_rtf);
        self.prune_rtf_ns.record_duration(timings.prune_rtf);
        self.post_process_ns.record_duration(timings.post_process);
    }
}

/// Keyword-by-keyword resolution for traced queries: the same loop as
/// the default `CorpusSource::try_resolve` (empty list ⇒ `None`), with
/// one [`Stage::PostingsDecode`] span per keyword.
fn resolve_traced(
    source: &dyn CorpusSource,
    query: &Query,
    ctx: &mut QueryContext,
) -> Result<Option<KeywordNodeSets>, SearchError> {
    let mut sets = Vec::with_capacity(query.len());
    for kw in query.keywords() {
        let t = Instant::now();
        let list = source.try_keyword_deweys(kw)?;
        ctx.trace.record_since(Stage::PostingsDecode, t);
        if list.is_empty() {
            return Ok(None);
        }
        sets.push(list);
    }
    Ok(Some(KeywordNodeSets::new(query.clone(), sets)))
}

/// The construct + prune loop of a traced query: identical work to the
/// untraced loop, with per-fragment durations accumulated into one
/// [`Stage::Construct`] and one [`Stage::Prune`] span laid end to end
/// from `phase_start` (the stages interleave per anchor, so honest
/// per-iteration spans would explode the span buffer; the aggregate
/// placement keeps the Chrome view readable and the totals exact).
fn construct_prune_traced(
    rtfs: &[crate::rtf::Rtf],
    policy: Policy,
    mut construct: impl FnMut(&crate::rtf::Rtf) -> Result<Fragment, SearchError>,
    fragments: &mut Vec<Fragment>,
    ctx: &mut QueryContext,
    phase_start: Instant,
) -> Result<(), SearchError> {
    let mut construct_ns = 0u64;
    let mut prune_ns = 0u64;
    for rtf in rtfs {
        let t = Instant::now();
        let raw = construct(rtf)?;
        construct_ns += u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let t = Instant::now();
        fragments.push(prune_owned(raw, policy));
        prune_ns += u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
    }
    let base = ctx.trace.offset_ns(phase_start);
    ctx.trace
        .record_manual(Stage::Construct, base, construct_ns);
    ctx.trace
        .record_manual(Stage::Prune, base + construct_ns, prune_ns);
    Ok(())
}

/// Clones the context's trace into the response (traced requests only)
/// and disarms it so the pooled context goes back clean. The clone is
/// a fixed-size copy — no heap allocation.
fn take_trace(ctx: &mut QueryContext, traced: bool) -> Option<xks_obs::QueryTrace> {
    traced.then(|| {
        let trace = ctx.trace.clone();
        ctx.trace.disarm();
        trace
    })
}

/// Materializes ranked hits by **moving** fragments into rank order:
/// the permutation is applied through option-slot takes, and top-k
/// truncation happens on the (index, score) order before this runs —
/// reordering never clones a fragment.
fn take_ranked(fragments: Vec<Fragment>, order: &[RankedFragment]) -> Vec<Hit> {
    let mut slots: Vec<Option<Fragment>> = fragments.into_iter().map(Some).collect();
    order
        .iter()
        .filter_map(|r| {
            let fragment = slots.get_mut(r.index).and_then(Option::take)?;
            Some(Hit {
                fragment,
                score: Some(r.score),
                signals: Some(r.signals),
            })
        })
        .collect()
}

/// True when `sorted` (a document-ordered posting list) contains a node
/// inside `anchor`'s subtree. The first posting ≥ `anchor` is either
/// the anchor itself, one of its descendants, or past the subtree — one
/// binary search decides.
fn subtree_contains(anchor: &Dewey, sorted: &[Dewey]) -> bool {
    let i = sorted.partition_point(|d| d < anchor);
    sorted.get(i).is_some_and(|d| anchor.is_ancestor_or_self(d))
}

#[cfg(test)]
#[allow(deprecated)] // the legacy shims are asserted against `execute`
mod tests {
    use super::*;
    use crate::source::{MemoryCorpus, SourceElement, SourceError};
    use xks_xmltree::fixtures::{publications, team, PAPER_QUERIES};

    fn q(s: &str) -> Query {
        Query::parse(s).unwrap()
    }

    fn req(s: &str) -> SearchRequest {
        SearchRequest::parse(s).unwrap()
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SearchEngine>();
    }

    #[test]
    fn execute_with_matches_pooled_execute() {
        let engine = SearchEngine::new(publications());
        let request = req(PAPER_QUERIES[2]);
        let pooled = engine.execute(&request).unwrap();
        let mut ctx = QueryContext::new();
        let explicit = engine.execute_with(&request, &mut ctx).unwrap();
        assert_eq!(pooled.hits, explicit.hits);
        // The pooled context was checked back in and gets reused.
        assert_eq!(engine.contexts.lock().unwrap().len(), 1);
        let _ = engine.execute(&request).unwrap();
        assert_eq!(engine.contexts.lock().unwrap().len(), 1);
    }

    #[test]
    fn legacy_shims_match_execute() {
        let engine = SearchEngine::new(publications());
        for kind in [
            AlgorithmKind::ValidRtf,
            AlgorithmKind::MaxMatchRtf,
            AlgorithmKind::MaxMatchSlca,
        ] {
            let legacy = engine.search(&q("liu keyword"), kind);
            let response = engine.execute(&req("liu keyword").algorithm(kind)).unwrap();
            let fragments: Vec<&Fragment> = response.fragments().collect();
            assert_eq!(
                legacy.fragments.iter().collect::<Vec<_>>(),
                fragments,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn shared_source_backs_many_engines() {
        use std::sync::Arc;
        let corpus: Arc<dyn crate::source::CorpusSource> =
            Arc::new(MemoryCorpus::new(xks_store::shred(&publications())));
        let a = SearchEngine::from_source(Arc::clone(&corpus));
        let b = SearchEngine::from_source(corpus);
        let request = req(PAPER_QUERIES[2]);
        assert_eq!(
            a.execute(&request).unwrap().hits,
            b.execute(&request).unwrap().hits,
        );
    }

    #[test]
    fn engine_answers_paper_queries() {
        let engine = SearchEngine::new(publications());
        let r = engine.execute(&req(PAPER_QUERIES[2])).unwrap();
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].fragment.len(), 8); // Figure 2(d)
        assert_eq!(r.stats.total_before_top_k, 1);
        assert!(!r.stats.truncated);
    }

    #[test]
    fn compare_produces_figure6_point() {
        let engine = SearchEngine::new(team());
        let c = engine.compare(&q("grizzlies position")).unwrap();
        assert_eq!(c.rtf_count, 1);
        assert_eq!(c.effectiveness.cfr, 0.0);
        assert!(c.effectiveness.max_apr > 0.2);
    }

    #[test]
    fn unmatched_query_is_empty_not_panic() {
        let engine = SearchEngine::new(team());
        let r = engine.execute(&req("nonexistent")).unwrap();
        assert!(r.hits.is_empty());
        assert_eq!(r.stats.total_before_top_k, 0);
        let c = engine.compare(&q("nonexistent")).unwrap();
        assert_eq!(c.rtf_count, 0);
        assert_eq!(c.effectiveness.cfr, 1.0);
    }

    #[test]
    fn ranked_execute_orders_best_first_and_scores() {
        let engine = SearchEngine::new(publications());
        let r = engine
            .execute(&req("liu keyword").weights(crate::rank::RankWeights::default()))
            .unwrap();
        assert_eq!(r.hits.len(), 2);
        // The tight single-node ref fragment ranks above the article.
        assert_eq!(r.hits[0].fragment.anchor.to_string(), "0.2.0.3.0");
        assert!(r.hits[0].score.unwrap() > r.hits[1].score.unwrap());
        assert!(r.hits.iter().all(|h| h.signals.is_some()));
        // The deprecated shim produces the same order.
        let legacy = engine.search_ranked(
            &q("liu keyword"),
            AlgorithmKind::ValidRtf,
            &crate::rank::RankWeights::default(),
        );
        assert_eq!(legacy.fragments[0], r.hits[0].fragment);
    }

    #[test]
    fn top_k_truncates_after_ranking() {
        let engine = SearchEngine::new(publications());
        let r = engine.execute(&req("liu keyword").top_k(1)).unwrap();
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].fragment.anchor.to_string(), "0.2.0.3.0");
        assert!(r.stats.truncated);
        assert_eq!(r.stats.total_before_top_k, 2);
        // A roomy top_k truncates nothing.
        let r = engine.execute(&req("liu keyword").top_k(10)).unwrap();
        assert_eq!(r.hits.len(), 2);
        assert!(!r.stats.truncated);
    }

    #[test]
    fn max_fragments_caps_in_document_order() {
        let engine = SearchEngine::new(publications());
        let r = engine
            .execute(&req("liu keyword").max_fragments(1))
            .unwrap();
        assert_eq!(r.hits.len(), 1);
        // Document order: the article fragment comes first.
        assert_eq!(r.hits[0].fragment.anchor.to_string(), "0.2.0");
        assert!(r.stats.truncated);
        assert_eq!(r.stats.total_before_top_k, 2, "counts before the cap");
        assert!(
            r.hits[0].score.is_none(),
            "max_fragments alone doesn't rank"
        );
    }

    #[test]
    fn slca_variant_returns_subset_of_anchors() {
        let engine = SearchEngine::new(publications());
        let slca = engine
            .execute(&req("liu keyword").algorithm(AlgorithmKind::MaxMatchSlca))
            .unwrap();
        let all = engine
            .execute(&req("liu keyword").algorithm(AlgorithmKind::MaxMatchRtf))
            .unwrap();
        assert!(slca.hits.len() <= all.hits.len());
        for h in &slca.hits {
            assert!(all
                .hits
                .iter()
                .any(|g| g.fragment.anchor == h.fragment.anchor));
        }
    }

    // ---- operator post-filters ----------------------------------------

    /// Two books: in the first, "rust" and "async" co-occur in the
    /// title; in the second they sit in different nodes.
    fn library() -> XmlTree {
        xks_xmltree::parse(
            "<lib>\
             <book><title>rust async</title><author>liu</author></book>\
             <book><title>rust</title><note>async</note><author>chen</author></book>\
             </lib>",
        )
        .unwrap()
    }

    #[test]
    fn plain_spec_skips_post_filters() {
        let engine = SearchEngine::new(library());
        let r = engine.execute(&req("rust async")).unwrap();
        assert_eq!(r.hits.len(), 2, "both books answer the flat query");
        assert_eq!(r.stats.filtered_out, 0);
    }

    #[test]
    fn phrase_demands_cooccurrence_in_one_node() {
        let engine = SearchEngine::new(library());
        let r = engine.execute(&req("\"rust async\"")).unwrap();
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.stats.filtered_out, 1);
        // The surviving book is the one whose title holds both words.
        assert!(r.hits[0]
            .fragment
            .iter()
            .any(|n| n.is_keyword && n.kset.len() == 2));
    }

    #[test]
    fn label_filter_constrains_the_matching_node() {
        let engine = SearchEngine::new(library());
        // async must be matched by a <title> node: only book 1.
        let r = engine.execute(&req("rust title:async")).unwrap();
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.stats.filtered_out, 1);
        // async matched by a <note> node: only book 2.
        let r = engine.execute(&req("rust note:async")).unwrap();
        assert_eq!(r.hits.len(), 1);
        // A label nothing carries filters everything.
        let r = engine.execute(&req("rust chapter:async")).unwrap();
        assert_eq!(r.hits.len(), 0);
        assert_eq!(r.stats.filtered_out, 2);
    }

    #[test]
    fn exclusion_rejects_fragments_containing_the_word() {
        let engine = SearchEngine::new(library());
        // "chen" occurs only in book 2's subtree — and in a node that
        // is NOT part of the fragment (author isn't a query keyword),
        // proving exclusions consult the corpus, not just the fragment.
        let r = engine.execute(&req("rust async -chen")).unwrap();
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.stats.filtered_out, 1);
        // Excluding an absent word excludes nothing.
        let r = engine.execute(&req("rust async -cobol")).unwrap();
        assert_eq!(r.hits.len(), 2);
    }

    #[test]
    fn post_filters_work_over_sources_too() {
        let corpus = MemoryCorpus::new(xks_store::shred(&library()));
        let engine = SearchEngine::from_owned_source(corpus);
        for (text, expect) in [
            ("\"rust async\"", 1),
            ("rust title:async", 1),
            ("rust async -chen", 1),
            ("rust async", 2),
        ] {
            let r = engine.execute(&req(text)).unwrap();
            assert_eq!(r.hits.len(), expect, "{text}");
        }
    }

    #[test]
    fn dropped_and_normalized_terms_reach_the_stats() {
        let engine = SearchEngine::new(library());
        let r = engine.execute(&req("Rust rust async")).unwrap();
        assert_eq!(r.stats.dropped_terms, ["rust"]);
        assert_eq!(
            r.stats.normalized_terms,
            [("Rust".to_owned(), "rust".to_owned())]
        );
    }

    // ---- failure paths ------------------------------------------------

    /// A corpus whose lookups fail like a dying disk would.
    #[derive(Debug, Default)]
    struct Failures {
        all_postings: bool,
        keyword: Option<&'static str>,
        elements: bool,
    }

    #[derive(Debug)]
    struct FailingCorpus {
        inner: MemoryCorpus,
        fail: Failures,
    }

    impl CorpusSource for FailingCorpus {
        fn keyword_deweys(&self, keyword: &str) -> Vec<Dewey> {
            self.inner.keyword_deweys(keyword)
        }
        fn element(&self, dewey: &Dewey) -> Option<SourceElement> {
            self.inner.element(dewey)
        }
        fn label_name(&self, label: u32) -> Option<String> {
            self.inner.label_name(label)
        }
        fn node_count(&self) -> usize {
            self.inner.node_count()
        }
        fn try_keyword_deweys(&self, keyword: &str) -> Result<Vec<Dewey>, SourceError> {
            if self.fail.all_postings || self.fail.keyword == Some(keyword) {
                return Err(SourceError::new("synthetic postings I/O failure"));
            }
            Ok(self.inner.keyword_deweys(keyword))
        }
        fn try_element(&self, dewey: &Dewey) -> Result<Option<SourceElement>, SourceError> {
            if self.fail.elements {
                return Err(SourceError::new("synthetic element I/O failure"));
            }
            Ok(self.inner.element(dewey))
        }
        fn try_element_label(&self, dewey: &Dewey) -> Result<Option<u32>, SourceError> {
            if self.fail.elements {
                return Err(SourceError::new("synthetic element I/O failure"));
            }
            Ok(self.inner.element_label(dewey))
        }
    }

    fn failing_engine(fail: Failures) -> SearchEngine {
        SearchEngine::from_owned_source(FailingCorpus {
            inner: MemoryCorpus::new(xks_store::shred(&library())),
            fail,
        })
    }

    #[test]
    fn backend_errors_surface_typed_not_panicking() {
        // Resolution failure (stage 1).
        let err = failing_engine(Failures {
            all_postings: true,
            ..Failures::default()
        })
        .execute(&req("rust async"))
        .unwrap_err();
        assert!(matches!(err, SearchError::Backend(_)), "{err}");
        assert!(err.to_string().contains("postings"));
        // Fragment-construction failure (stage 4).
        let err = failing_engine(Failures {
            elements: true,
            ..Failures::default()
        })
        .execute(&req("rust async"))
        .unwrap_err();
        assert!(matches!(err, SearchError::Backend(_)), "{err}");
        assert!(err.to_string().contains("element"));
        // Exclusion resolution failure (post-filter stage): positive
        // keywords resolve fine, only the excluded word's lookup dies.
        let engine = failing_engine(Failures {
            keyword: Some("chen"),
            ..Failures::default()
        });
        assert!(engine.execute(&req("rust async")).is_ok());
        let err = engine.execute(&req("rust async -chen")).unwrap_err();
        assert!(matches!(err, SearchError::Backend(_)), "{err}");
    }

    // ---- planner ------------------------------------------------------

    /// A corpus where "rare" occurs once and "common" floods 40+ nodes
    /// — enough skew for [`choose_strategy`] to pick the gallop.
    fn skewed() -> XmlTree {
        let mut xml = String::from("<lib>");
        for i in 0..40 {
            xml.push_str(&format!("<b><t>common w{i}</t></b>"));
        }
        xml.push_str("<b><t>common rare</t></b></lib>");
        xks_xmltree::parse(&xml).unwrap()
    }

    /// A source with no sealed statistics: the default
    /// `keyword_stats` (`None`) forces the planner onto the legacy
    /// merge, giving an engine-level merge-vs-gallop differential.
    #[derive(Debug)]
    struct NoStats(MemoryCorpus);

    impl CorpusSource for NoStats {
        fn keyword_deweys(&self, keyword: &str) -> Vec<Dewey> {
            self.0.keyword_deweys(keyword)
        }
        fn element(&self, dewey: &Dewey) -> Option<SourceElement> {
            self.0.element(dewey)
        }
        fn element_label(&self, dewey: &Dewey) -> Option<u32> {
            self.0.element_label(dewey)
        }
        fn label_name(&self, label: u32) -> Option<String> {
            self.0.label_name(label)
        }
        fn node_count(&self) -> usize {
            self.0.node_count()
        }
    }

    #[test]
    fn planner_gallops_on_skew_and_matches_forced_merge() {
        let tree = skewed();
        let galloping = SearchEngine::new(tree.clone());
        let merging =
            SearchEngine::from_owned_source(NoStats(MemoryCorpus::new(xks_store::shred(&tree))));
        for kind in [
            AlgorithmKind::ValidRtf,
            AlgorithmKind::MaxMatchRtf,
            AlgorithmKind::MaxMatchSlca,
        ] {
            let g = galloping
                .execute(&req("rare common").algorithm(kind))
                .unwrap();
            let m = merging
                .execute(&req("rare common").algorithm(kind))
                .unwrap();
            assert_eq!(g.hits, m.hits, "{kind:?}");
            assert_eq!(g.stats.plan_strategy, crate::plan::PlanStrategy::Gallop);
            assert_eq!(g.stats.plan_driver, 0, "rare is the driver");
            assert!(g.stats.plan_postings >= 41);
            assert_eq!(m.stats.plan_strategy, crate::plan::PlanStrategy::FullMerge);
        }
    }

    #[test]
    fn uniform_lists_keep_the_merge_path() {
        let engine = SearchEngine::new(publications());
        // "liu" and "keyword" are both small lists — no 8× skew.
        let r = engine.execute(&req("liu keyword")).unwrap();
        assert_eq!(r.stats.plan_strategy, crate::plan::PlanStrategy::FullMerge);
        assert!(r.stats.plan_postings > 0);
    }

    #[test]
    fn bounded_topk_matches_full_ranking_and_skips() {
        // Two deep tight fragments and 20 shallow ones: the deep pair
        // fills the top 2 with score 1.0 and every shallow bound
        // (spec 0.5 at best) falls strictly below — all 20 skipped.
        let mut xml = String::from(
            "<lib><x><y><z><t>common</t></z></y></x>\
             <x><y><z><t>common</t></z></y></x>",
        );
        for _ in 0..20 {
            xml.push_str("<b><t>common</t></b>");
        }
        xml.push_str("</lib>");
        let engine = SearchEngine::new(xks_xmltree::parse(&xml).unwrap());
        let full = engine
            .execute(&req("common").weights(crate::rank::RankWeights::default()))
            .unwrap();
        let topk = engine.execute(&req("common").top_k(2)).unwrap();
        assert_eq!(
            topk.hits,
            full.hits[..2].to_vec(),
            "same top 2, same scores"
        );
        assert!(
            topk.stats.rtfs_skipped_topk >= 20,
            "skipped {}",
            topk.stats.rtfs_skipped_topk
        );
        assert!(topk.stats.truncated);
        assert_eq!(topk.stats.total_before_top_k, 22);
        assert_eq!(full.stats.rtfs_skipped_topk, 0, "no top_k, no skipping");
        // The traced run takes the legacy path and must agree.
        let traced = engine.execute(&req("common").top_k(2).trace(true)).unwrap();
        assert_eq!(traced.hits, topk.hits);
        assert_eq!(traced.stats.rtfs_skipped_topk, 0);
    }

    #[test]
    fn explain_reports_rarest_first_plan() {
        let engine = SearchEngine::new(skewed());
        let report = engine.explain(&req("common rare")).unwrap();
        assert_eq!(report.strategy, crate::plan::PlanStrategy::Gallop);
        assert_eq!(report.shards, 0);
        assert_eq!(report.terms.len(), 2);
        assert_eq!(report.terms[0].keyword, "rare", "rarest first");
        assert_eq!(report.terms[0].postings, 1);
        assert_eq!(report.terms[0].doc_freq, Some(1));
        assert!(report.terms[0].sealed);
        assert!(report.terms[1].postings >= 41);
        // Same report through a sealed source backend.
        let source =
            SearchEngine::from_owned_source(MemoryCorpus::new(xks_store::shred(&skewed())));
        let via_source = source.explain(&req("common rare")).unwrap();
        assert_eq!(via_source.terms, report.terms);
        assert_eq!(via_source.strategy, report.strategy);
    }

    #[test]
    fn expired_deadline_is_typed_timeout_with_partial_stats() {
        let engine = SearchEngine::new(publications());
        // Already-expired deadline: cut at admission, before resolve.
        let request = req("liu keyword").deadline_at(Instant::now() - Duration::from_millis(1));
        let err = engine.execute(&request).unwrap_err();
        match &err {
            SearchError::Timeout(t) => assert_eq!(t.stage, "resolve"),
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(err.to_string().contains("deadline exceeded"), "{err}");
        // A roomy budget is invisible: byte-identical hits.
        let roomy = engine
            .execute(&req("liu keyword").timeout(Duration::from_secs(60)))
            .unwrap();
        let plain = engine.execute(&req("liu keyword")).unwrap();
        assert_eq!(roomy.hits, plain.hits);
    }

    #[test]
    fn deadline_is_not_request_identity() {
        let a = req("liu keyword");
        let b = req("liu keyword").timeout(Duration::from_millis(5));
        assert_eq!(a, b, "deadline rides along like parse_ns");
    }

    #[test]
    fn poisoned_context_pool_recovers() {
        let engine = SearchEngine::new(library());
        // Seed the pool, then poison its mutex by panicking mid-lock.
        let _ = engine.execute(&req("rust")).unwrap();
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = engine.contexts.lock().unwrap();
            panic!("poison the context pool");
        }));
        assert!(poison.is_err());
        assert!(engine.contexts.lock().is_err(), "pool mutex is poisoned");
        // Queries keep working: checkout/checkin recover the poison.
        let r = engine.execute(&req("rust async")).unwrap();
        assert_eq!(r.hits.len(), 2);
        let legacy = engine.search(&q("rust"), AlgorithmKind::ValidRtf);
        assert_eq!(legacy.fragments.len(), 2);
    }
}
