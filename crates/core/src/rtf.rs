//! Relaxed Tightest Fragments — the `getRTF` stage of Algorithm 1.
//!
//! `getRTF` partitions the query's keyword nodes among the interesting
//! LCA (ELCA) anchors: every keyword node is dispatched to the **last**
//! anchor in the pre-order-sorted anchor list that is an ancestor of or
//! equal to it — i.e. its lowest interesting-LCA ancestor-or-self.
//!
//! Two refinements keep the dispatch faithful to Definition 2 (both are
//! verified against the executable specification in [`crate::spec`]):
//!
//! 1. Keyword nodes with **no** covering anchor belong to no partition
//!    and are dropped.
//! 2. A keyword node `v` whose *deepest covering combination* — the
//!    deepest `LCA(v, picks…)` over one pick per keyword list — lies
//!    strictly below its lowest anchor is also dropped (Definition 2's
//!    third rule: `v` "can compose a partition with other keyword nodes
//!    so that the new LCA is lower"). The paper's pseudo-code omits this
//!    check, assuming (§4.3 analysis (1), footnote) that such a deeper
//!    LCA is always itself interesting; that assumption fails when the
//!    deeper combination's LCA is a *shadowed* (non-ELCA) node, and the
//!    dispatch would then violate the RTF conditions.

use xks_index::KeywordNodeSets;
use xks_xmltree::Dewey;

use crate::keyset::KeySet;

/// One Relaxed Tightest Fragment in *keyword-node form*: the anchor `a`
/// (an interesting LCA node) and the sorted keyword nodes dispatched to
/// it (`R.knodes` in the paper's pseudo-code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rtf {
    /// The anchor LCA node (the paper's `R.a`).
    pub anchor: Dewey,
    /// The keyword nodes of this partition, in document order, each with
    /// the keywords it contains.
    pub knodes: Vec<(Dewey, KeySet)>,
}

impl Rtf {
    /// The keyword union over the partition. A well-formed RTF covers
    /// the whole query.
    #[must_use]
    pub fn keyword_union(&self) -> KeySet {
        self.knodes
            .iter()
            .fold(KeySet::EMPTY, |acc, (_, m)| acc.union(*m))
    }

    /// The Dewey codes of the keyword nodes.
    #[must_use]
    pub fn keyword_deweys(&self) -> Vec<Dewey> {
        self.knodes.iter().map(|(d, _)| d.clone()).collect()
    }
}

/// Dispatches every keyword node to its lowest anchor (ancestor-or-self)
/// with one merged document-order sweep.
///
/// `anchors` must be sorted in document order (as produced by
/// `xks_lca::elca_stack` / `indexed_lookup_eager`); the result preserves
/// that anchor order. Anchors are nested or disjoint in general, so a
/// stack of "currently open" anchors identifies the lowest covering one
/// in O(1) amortized per node.
#[must_use]
pub fn get_rtf(anchors: &[Dewey], sets: &KeywordNodeSets) -> Vec<Rtf> {
    let merged = xks_lca::common::merge_postings(sets.sets());
    get_rtf_impl(anchors, &merged, sets, true)
}

/// Like [`get_rtf`] but consuming an already-merged document-ordered
/// posting stream (see [`xks_lca::merge_postings_into`]) — the engine
/// merges once per query and feeds the same stream to `getLCA` and
/// `getRTF`.
#[must_use]
pub fn get_rtf_from_merged(
    anchors: &[Dewey],
    merged: &[(Dewey, u64)],
    sets: &KeywordNodeSets,
) -> Vec<Rtf> {
    get_rtf_impl(anchors, merged, sets, true)
}

/// The paper's **literal** `getRTF` pseudo-code, without the
/// deepest-covering-combination check.
///
/// Kept for ablation and to demonstrate the divergence from
/// Definition 2: when a keyword node participates in a deeper covering
/// combination whose LCA is a *shadowed* (non-interesting) node, this
/// variant still assigns it to its lowest interesting-LCA ancestor,
/// violating the RTF completeness conditions (see `EXPERIMENTS.md`
/// "Findings" #2 and the unit test below). Use [`get_rtf`] unless you
/// specifically want the paper's verbatim behaviour.
#[must_use]
pub fn get_rtf_unchecked(anchors: &[Dewey], sets: &KeywordNodeSets) -> Vec<Rtf> {
    let merged = xks_lca::common::merge_postings(sets.sets());
    get_rtf_impl(anchors, &merged, sets, false)
}

fn get_rtf_impl(
    anchors: &[Dewey],
    knodes: &[(Dewey, u64)],
    sets: &KeywordNodeSets,
    check_depth: bool,
) -> Vec<Rtf> {
    let mut rtfs: Vec<Rtf> = anchors
        .iter()
        .map(|a| Rtf {
            anchor: a.clone(),
            knodes: Vec::new(),
        })
        .collect();

    // Merge anchors and keyword nodes in document order; at equal Dewey
    // codes the anchor comes first so a keyword node that *is* an anchor
    // lands in its own partition. The merged posting stream carries each
    // node's keyword mask, so no per-node index probes are needed.
    let mut open: Vec<usize> = Vec::new(); // indices into rtfs, outermost first
    let mut ai = 0usize;

    for (d, raw_mask) in knodes {
        // Open every anchor that starts at or before this node.
        while ai < anchors.len() && anchors[ai] <= *d {
            while let Some(&top) = open.last() {
                if rtfs[top].anchor.is_ancestor_or_self(&anchors[ai]) {
                    break;
                }
                open.pop();
            }
            open.push(ai);
            ai += 1;
        }
        // Close anchors whose subtree we have left.
        while let Some(&top) = open.last() {
            if rtfs[top].anchor.is_ancestor_or_self(d) {
                break;
            }
            open.pop();
        }
        if let Some(&top) = open.last() {
            if !check_depth || deepest_combination_len(d, sets) == rtfs[top].anchor.len() {
                rtfs[top].knodes.push((d.clone(), KeySet(*raw_mask)));
            }
            // else: v composes a deeper (shadowed) combination and may
            // not join this partition (Definition 2, rule 3).
        }
        // else: orphan keyword node — no interesting LCA covers it.
    }
    rtfs
}

fn deepest_combination_len(v: &Dewey, sets: &KeywordNodeSets) -> usize {
    xks_lca::common::deepest_combination_len(v, sets.sets())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xks_index::{InvertedIndex, Query};
    use xks_lca::elca_stack;
    use xks_xmltree::fixtures::publications;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    fn resolve(query: &str) -> KeywordNodeSets {
        let tree = publications();
        let index = InvertedIndex::build(&tree);
        index
            .resolve(&Query::parse(query).unwrap())
            .expect("all keywords match")
    }

    fn run(query: &str) -> Vec<Rtf> {
        let sets = resolve(query);
        let anchors = elca_stack(sets.sets());
        get_rtf(&anchors, &sets)
    }

    #[test]
    fn q2_partitions_match_example_3() {
        // Example 3/4: RTFs are {r} anchored at ref and {n, t, a}
        // anchored at article 0.2.0.
        let rtfs = run("liu keyword");
        assert_eq!(rtfs.len(), 2);

        assert_eq!(rtfs[0].anchor, d("0.2.0"));
        let knodes: Vec<String> = rtfs[0]
            .keyword_deweys()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(knodes, ["0.2.0.0.0.0", "0.2.0.1", "0.2.0.2"]);

        assert_eq!(rtfs[1].anchor, d("0.2.0.3.0"));
        let knodes: Vec<String> = rtfs[1]
            .keyword_deweys()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(knodes, ["0.2.0.3.0"]);
    }

    #[test]
    fn q3_single_partition_with_all_keyword_nodes() {
        // Example 6: one anchor (the root) collecting all five nodes.
        let rtfs = run("vldb title xml keyword search");
        assert_eq!(rtfs.len(), 1);
        assert_eq!(rtfs[0].anchor, d("0"));
        let knodes: Vec<String> = rtfs[0]
            .keyword_deweys()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(
            knodes,
            ["0.0", "0.2.0.1", "0.2.0.2", "0.2.0.3.0", "0.2.1.1"]
        );
    }

    #[test]
    fn every_rtf_covers_the_query() {
        for q in [
            "liu keyword",
            "vldb title xml keyword search",
            "skyline query",
        ] {
            let sets = resolve(q);
            let anchors = elca_stack(sets.sets());
            for rtf in get_rtf(&anchors, &sets) {
                assert!(
                    rtf.keyword_union().covers_query(sets.query().len()),
                    "query {q}: anchor {} does not cover",
                    rtf.anchor
                );
            }
        }
    }

    #[test]
    fn keyword_masks_recorded_per_node() {
        let rtfs = run("liu keyword");
        // ref contains both keywords.
        let (_, mask) = &rtfs[1].knodes[0];
        assert_eq!(mask.len(), 2);
        // name contains only "liu" (keyword 0).
        let (_, mask) = &rtfs[0].knodes[0];
        assert!(mask.contains(0) && !mask.contains(1));
    }

    #[test]
    fn orphan_keyword_nodes_are_dropped() {
        use xks_index::Query;
        // Hand-built: anchors = {0.0.0} only; keyword node 0.1 (k1) has
        // no covering anchor.
        let q = Query::parse("k1 k2").unwrap();
        let sets = KeywordNodeSets::new(
            q,
            vec![vec![d("0.0.0.0"), d("0.0.1")], vec![d("0.0.0.1"), d("0.1")]],
        );
        let anchors = elca_stack(sets.sets());
        assert_eq!(anchors, vec![d("0.0.0")]);
        let rtfs = get_rtf(&anchors, &sets);
        assert_eq!(rtfs.len(), 1);
        let knodes: Vec<String> = rtfs[0]
            .keyword_deweys()
            .iter()
            .map(ToString::to_string)
            .collect();
        // 0.0.1 and 0.1 are orphans (outside the only anchor 0.0.0).
        assert_eq!(knodes, ["0.0.0.0", "0.0.0.1"]);
    }

    #[test]
    fn unchecked_variant_diverges_from_definition_2() {
        // The shadowed-combination counterexample (EXPERIMENTS.md
        // Findings #2): root = 0, chain 0.0 → 0.0.0 with k1+k2 under
        // 0.0.0 plus an extra k1 under 0.0 (0.0.1) and root-level
        // witnesses 0.1 (k1), 0.2 (k2). ELCA = {0, 0.0.0}. The keyword
        // node 0.0.1 (k1) combines with 0.0.0's k2 to an LCA of 0.0 —
        // a CA but *shadowed* node — so Definition 2 bars it from the
        // root partition; the paper's literal dispatch includes it.
        let q = Query::parse("k1 k2").unwrap();
        let sets = KeywordNodeSets::new(
            q,
            vec![
                vec![d("0.0.0.0"), d("0.0.1"), d("0.1")],
                vec![d("0.0.0.1"), d("0.2")],
            ],
        );
        let anchors = xks_lca::elca_stack(sets.sets());
        assert_eq!(anchors, vec![d("0"), d("0.0.0")]);

        let faithful = get_rtf(&anchors, &sets);
        let root_nodes: Vec<String> = faithful[0]
            .keyword_deweys()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(root_nodes, ["0.1", "0.2"], "0.0.1 excluded by rule 3");

        let literal = get_rtf_unchecked(&anchors, &sets);
        let root_nodes: Vec<String> = literal[0]
            .keyword_deweys()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(
            root_nodes,
            ["0.0.1", "0.1", "0.2"],
            "the paper's dispatch keeps the shadowed node"
        );
        // The literal variant's partition violates the spec oracle.
        let spec = crate::spec::spec_rtfs(sets.sets()).unwrap();
        assert_eq!(spec.len(), 2);
        assert_eq!(
            spec[0].nodes.len(),
            2,
            "spec agrees with the checked variant"
        );
    }

    #[test]
    fn nested_anchors_assign_to_lowest() {
        let q = Query::parse("k1 k2").unwrap();
        // Anchors will be 0.0 (outer, via 0.0.0+0.0.1... ) — construct
        // the independent-witness shape: ELCA = {0, 0.0}.
        let sets = KeywordNodeSets::new(
            q,
            vec![vec![d("0.0.0"), d("0.1")], vec![d("0.0.1"), d("0.2")]],
        );
        let anchors = elca_stack(sets.sets());
        assert_eq!(anchors, vec![d("0"), d("0.0")]);
        let rtfs = get_rtf(&anchors, &sets);
        // Inner nodes go to 0.0, outer to 0.
        let outer: Vec<String> = rtfs[0]
            .keyword_deweys()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(outer, ["0.1", "0.2"]);
        let inner: Vec<String> = rtfs[1]
            .keyword_deweys()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(inner, ["0.0.0", "0.0.1"]);
    }
}
