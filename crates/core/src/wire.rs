//! The documented JSON wire form of a search — shared by the CLI
//! (`xks search --format json`) and the HTTP server (`xks serve`).
//!
//! Both surfaces promise the *same bytes* for the same query (modulo
//! the `timings_us` block, which is wall-clock), so the rendering
//! lives here exactly once: a [`SearchResponse`] becomes the
//! `docs/API.md` result object via [`response_json`], and the two
//! binaries only differ in how they frame it (the CLI wraps results in
//! `{"results":[...]}`, the server returns one object per request).
//! The JSON values are [`xks_store::json::Value`] trees — the
//! workspace's dependency-free JSON, same as the snapshot format.

use std::collections::BTreeMap;

use xks_store::json::Value;

use crate::algorithms::StageTimings;
use crate::engine::{AlgorithmKind, SearchEngine};
use crate::request::{SearchRequest, SearchResponse, SearchStats, SearchTimeout};
use xks_obs::QueryTrace;

/// Builds a JSON object from literal key/value pairs.
pub fn obj<const N: usize>(entries: [(&str, Value); N]) -> BTreeMap<String, Value> {
    entries
        .into_iter()
        .map(|(k, v)| (k.to_owned(), v))
        .collect()
}

/// The CLI name of an algorithm (`valid` / `maxmatch` / `slca`) — the
/// value of the `algorithm` field in every wire document, and what
/// [`parse_algorithm`] accepts back.
#[must_use]
pub fn algorithm_name(kind: AlgorithmKind) -> &'static str {
    match kind {
        AlgorithmKind::ValidRtf => "valid",
        AlgorithmKind::MaxMatchRtf => "maxmatch",
        AlgorithmKind::MaxMatchSlca => "slca",
    }
}

/// Parses a CLI/wire algorithm name (the inverse of
/// [`algorithm_name`]); `None` for anything else.
#[must_use]
pub fn parse_algorithm(name: &str) -> Option<AlgorithmKind> {
    match name {
        "valid" => Some(AlgorithmKind::ValidRtf),
        "maxmatch" => Some(AlgorithmKind::MaxMatchRtf),
        "slca" => Some(AlgorithmKind::MaxMatchSlca),
        _ => None,
    }
}

/// A [`StageTimings`] block as the documented `timings_us` /
/// `stages_us` JSON object (microsecond integers plus their total).
#[must_use]
pub fn stage_timings_json(timings: &StageTimings) -> Value {
    Value::Obj(obj([
        (
            "get_keyword_nodes",
            Value::Num(timings.get_keyword_nodes.as_micros() as u64),
        ),
        ("get_lca", Value::Num(timings.get_lca.as_micros() as u64)),
        ("get_rtf", Value::Num(timings.get_rtf.as_micros() as u64)),
        (
            "prune_rtf",
            Value::Num(timings.prune_rtf.as_micros() as u64),
        ),
        (
            "post_process",
            Value::Num(timings.post_process.as_micros() as u64),
        ),
        ("total", Value::Num(timings.total().as_micros() as u64)),
    ]))
}

/// A recorded query trace as JSON: spans in record order with
/// nanosecond offsets from the trace origin.
#[must_use]
pub fn trace_json(trace: &QueryTrace) -> Value {
    let spans = trace
        .spans()
        .iter()
        .map(|span| {
            Value::Obj(obj([
                ("stage", Value::Str(span.stage.as_str().to_owned())),
                ("start_ns", Value::Num(span.start_ns)),
                ("dur_ns", Value::Num(span.dur_ns)),
            ]))
        })
        .collect();
    Value::Obj(obj([
        ("spans", Value::Arr(spans)),
        ("dropped", Value::Num(u64::from(trace.dropped()))),
    ]))
}

/// The `stats` block of a response — also the partial-stats body of a
/// deadline `503`, so a dashboard reads one shape either way.
#[must_use]
pub fn stats_json(stats: &SearchStats) -> Value {
    Value::Obj(obj([
        ("truncated", Value::Bool(stats.truncated)),
        (
            "total_before_top_k",
            Value::Num(stats.total_before_top_k as u64),
        ),
        ("filtered_out", Value::Num(stats.filtered_out as u64)),
        (
            "dropped_terms",
            Value::Arr(
                stats
                    .dropped_terms
                    .iter()
                    .map(|t| Value::Str(t.clone()))
                    .collect(),
            ),
        ),
        (
            "normalized_terms",
            Value::Arr(
                stats
                    .normalized_terms
                    .iter()
                    .map(|(raw, norm)| {
                        Value::Arr(vec![Value::Str(raw.clone()), Value::Str(norm.clone())])
                    })
                    .collect(),
            ),
        ),
        (
            "plan_strategy",
            Value::Str(stats.plan_strategy.as_str().to_owned()),
        ),
        ("plan_postings", Value::Num(stats.plan_postings)),
        (
            "shards_skipped",
            Value::Num(u64::from(stats.shards_skipped)),
        ),
        (
            "rtfs_skipped_topk",
            Value::Num(u64::from(stats.rtfs_skipped_topk)),
        ),
    ]))
}

/// A [`SearchTimeout`] as the documented deadline-`503` JSON body:
/// which stage the pipeline was cut before, the wall time spent, and
/// the partial [`stats_json`] accumulated up to the cut.
#[must_use]
pub fn timeout_json(timeout: &SearchTimeout) -> Value {
    Value::Obj(obj([
        ("error", Value::Str("deadline_exceeded".to_owned())),
        ("stage", Value::Str(timeout.stage.to_owned())),
        ("elapsed_us", Value::Num(timeout.elapsed.as_micros() as u64)),
        ("stats", stats_json(&timeout.stats)),
    ]))
}

/// The display name of a fragment-node label, resolved through the
/// engine's backend (source-backed engines keep labels in the corpus
/// dictionary, tree-backed engines in the parsed tree).
fn label_string(engine: &SearchEngine, label: xks_xmltree::LabelId) -> String {
    match engine.corpus() {
        Some(source) => source
            .label_name(label.as_u32())
            .unwrap_or_else(|| label.to_string()),
        None => engine.tree().labels().name(label).to_owned(),
    }
}

/// One response as the documented JSON schema (docs/API.md). `limit`
/// caps the emitted hits exactly like the CLI's text renderer;
/// anything cut is reported via `hits_omitted`, never dropped
/// silently. Pass `usize::MAX` for no cap.
#[must_use]
pub fn response_json(
    engine: &SearchEngine,
    request: &SearchRequest,
    response: &SearchResponse,
    limit: usize,
) -> Value {
    let hits: Vec<Value> = response
        .hits
        .iter()
        .take(limit)
        .map(|hit| {
            let nodes: Vec<Value> = hit
                .fragment
                .iter()
                .map(|n| {
                    Value::Obj(obj([
                        ("dewey", Value::Str(n.dewey.to_string())),
                        ("label", Value::Str(label_string(engine, n.label))),
                        ("keyword", Value::Bool(n.is_keyword)),
                    ]))
                })
                .collect();
            let mut fields = obj([
                ("anchor", Value::Str(hit.fragment.anchor.to_string())),
                ("nodes", Value::Arr(nodes)),
                ("score", hit.score.map_or(Value::Null, Value::Float)),
            ]);
            if let Some(signals) = hit.signals {
                fields.insert(
                    "signals".to_owned(),
                    Value::Arr(signals.iter().map(|&s| Value::Float(s)).collect()),
                );
            }
            Value::Obj(fields)
        })
        .collect();
    let mut result = obj([
        ("query", Value::Str(request.spec().to_string())),
        (
            "algorithm",
            Value::Str(algorithm_name(request.kind()).to_owned()),
        ),
        ("hits", Value::Arr(hits)),
        ("stats", stats_json(&response.stats)),
        ("timings_us", stage_timings_json(&response.timings)),
    ]);
    if let Some(trace) = &response.trace {
        result.insert("trace".to_owned(), trace_json(trace));
    }
    if response.hits.len() > limit {
        result.insert(
            "hits_omitted".to_owned(),
            Value::Num((response.hits.len() - limit) as u64),
        );
    }
    Value::Obj(result)
}
