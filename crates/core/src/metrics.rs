//! Effectiveness metrics of §5.1: CFR, APR, APR′ and Max APR.
//!
//! For a query, let `A` be the anchor (interesting LCA) set, `V` the
//! meaningful RTFs computed by ValidRTF and `X` the fragments computed by
//! (revised) MaxMatch — both indexed by anchor. Then:
//!
//! * **CFR** (common fragment ratio) `= |V ∩ X| / |A|` — the share of
//!   anchors where both algorithms return the identical node set;
//! * per-anchor pruning ratio `xv_a = |x_a − v_a| / |x_a|` — the share
//!   of MaxMatch's nodes that ValidRTF additionally discards;
//! * **Max APR** `= max_a xv_a` — the extreme fragment's ratio (§5.3
//!   splits it out because the root-anchored RTF dominates);
//! * **APR** `= Σ_a xv_a / |V − V∩X|` — average over the differing
//!   fragments;
//! * **APR′** — APR recomputed after discarding the extreme fragment.

use std::collections::BTreeSet;

use xks_xmltree::Dewey;

use crate::fragment::Fragment;

/// The §5.1 effectiveness ratios for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct Effectiveness {
    /// Number of anchors `|A|` (= number of RTFs).
    pub rtf_count: usize,
    /// Number of anchors where both fragments have equal node sets.
    pub common_count: usize,
    /// Common fragment ratio `|V∩X| / |A|` (1.0 when `|A| = 0`).
    pub cfr: f64,
    /// Average pruning ratio over differing fragments.
    pub apr: f64,
    /// APR after discarding the extreme fragment.
    pub apr_prime: f64,
    /// The largest per-fragment pruning ratio.
    pub max_apr: f64,
}

/// Computes the ratios from anchor-aligned fragment pairs
/// `(valid_rtf_fragment, maxmatch_fragment)`.
///
/// Both lists must come from the same anchor set in the same order (the
/// pipeline guarantees this); the function panics on anchor mismatch to
/// surface misuse early.
#[must_use]
pub fn effectiveness(pairs: &[(Fragment, Fragment)]) -> Effectiveness {
    let mut ratios: Vec<f64> = Vec::with_capacity(pairs.len());
    let mut common = 0usize;
    for (v, x) in pairs {
        assert_eq!(v.anchor, x.anchor, "fragment pair anchors must align");
        let v_nodes: BTreeSet<Dewey> = v.deweys().into_iter().collect();
        let x_nodes: BTreeSet<Dewey> = x.deweys().into_iter().collect();
        if v_nodes == x_nodes {
            common += 1;
            ratios.push(0.0);
        } else {
            let extra = x_nodes.difference(&v_nodes).count();
            ratios.push(extra as f64 / x_nodes.len() as f64);
        }
    }

    let n = pairs.len();
    let differing = n - common;
    let sum: f64 = ratios.iter().sum();
    let max_apr = ratios.iter().cloned().fold(0.0, f64::max);
    let apr = if differing > 0 {
        sum / differing as f64
    } else {
        0.0
    };
    let apr_prime = if differing > 1 {
        (sum - max_apr) / (differing - 1) as f64
    } else {
        0.0
    };
    Effectiveness {
        rtf_count: n,
        common_count: common,
        cfr: if n > 0 { common as f64 / n as f64 } else { 1.0 },
        apr,
        apr_prime,
        max_apr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragment;
    use crate::prune::{prune, Policy};
    use crate::rtf::get_rtf;
    use xks_index::{InvertedIndex, Query};
    use xks_lca::elca_stack;
    use xks_xmltree::XmlTree;

    fn pairs_for(tree: &XmlTree, query: &str) -> Vec<(Fragment, Fragment)> {
        let index = InvertedIndex::build(tree);
        let sets = index.resolve(&Query::parse(query).unwrap()).unwrap();
        let anchors = elca_stack(sets.sets());
        get_rtf(&anchors, &sets)
            .iter()
            .map(|r| {
                let raw = Fragment::construct(tree, r);
                (
                    prune(&raw, Policy::ValidContributor),
                    prune(&raw, Policy::Contributor),
                )
            })
            .collect()
    }

    #[test]
    fn identical_results_give_cfr_one() {
        let tree = xks_xmltree::fixtures::publications();
        let pairs = pairs_for(&tree, "liu keyword");
        let eff = effectiveness(&pairs);
        assert_eq!(eff.rtf_count, 2);
        assert_eq!(eff.common_count, 2);
        assert_eq!(eff.cfr, 1.0);
        assert_eq!(eff.apr, 0.0);
        assert_eq!(eff.max_apr, 0.0);
    }

    #[test]
    fn q4_redundancy_shows_up_as_pruning() {
        // ValidRTF removes 2 of MaxMatch's 9 nodes (player 0.1.2 and its
        // position child) → one differing fragment with ratio 2/9.
        let tree = xks_xmltree::fixtures::team();
        let pairs = pairs_for(&tree, "grizzlies position");
        let eff = effectiveness(&pairs);
        assert_eq!(eff.rtf_count, 1);
        assert_eq!(eff.common_count, 0);
        assert_eq!(eff.cfr, 0.0);
        assert!((eff.apr - 2.0 / 9.0).abs() < 1e-12);
        assert_eq!(eff.apr_prime, 0.0); // only one differing fragment
        assert!((eff.max_apr - 2.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn q1_false_positive_counts_nothing_for_validrtf() {
        // ValidRTF *keeps more* than MaxMatch here: v ⊃ x, so
        // |x − v| = 0 yet the node sets differ → CFR < 1 with ratio 0.
        let tree = xks_xmltree::fixtures::publications();
        let pairs = pairs_for(&tree, "wong fu dynamic skyline query");
        let eff = effectiveness(&pairs);
        assert_eq!(eff.rtf_count, 1);
        assert_eq!(eff.cfr, 0.0);
        assert_eq!(eff.apr, 0.0);
        assert_eq!(eff.max_apr, 0.0);
    }

    #[test]
    fn empty_pairs_degenerate() {
        let eff = effectiveness(&[]);
        assert_eq!(eff.rtf_count, 0);
        assert_eq!(eff.cfr, 1.0);
        assert_eq!(eff.apr, 0.0);
    }

    #[test]
    #[should_panic(expected = "anchors must align")]
    fn mismatched_anchors_rejected() {
        let tree = xks_xmltree::fixtures::publications();
        let a = pairs_for(&tree, "liu keyword");
        let mismatched = vec![(a[0].0.clone(), a[1].1.clone())];
        let _ = effectiveness(&mismatched);
    }
}
