//! Keyword bitmasks — the `kList` / key-number machinery of §4.1.
//!
//! The node data structure stores the tree keyword set `TK_v` of a node
//! as a bit list over the query keywords and compares sets through their
//! integer "key numbers". We pack the bit list into a `u64` ([`KeySet`]):
//! bit `i` set means the node's subtree contains keyword `w_{i+1}`.
//!
//! The paper prints key numbers with the **first** keyword as the most
//! significant bit (`kList = 0 1 1 1 1` for `Q3 = {VLDB, title, XML,
//! keyword, search}` has key number 15). [`KeySet::key_number`]
//! reproduces that convention so the worked examples can be asserted
//! verbatim; all set algebra uses the raw mask, which is
//! convention-independent.

use std::fmt;

/// A set of query-keyword indices packed in a `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct KeySet(pub u64);

impl KeySet {
    /// The empty set.
    pub const EMPTY: KeySet = KeySet(0);

    /// The set containing only keyword `i` (0-based query position).
    #[must_use]
    pub fn single(i: usize) -> Self {
        debug_assert!(i < 64);
        KeySet(1 << i)
    }

    /// The full set over `k` keywords.
    #[must_use]
    pub fn full(k: usize) -> Self {
        debug_assert!((1..=64).contains(&k));
        KeySet(if k == 64 { u64::MAX } else { (1u64 << k) - 1 })
    }

    /// `true` when no keyword is present.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership of keyword `i`.
    #[must_use]
    pub fn contains(self, i: usize) -> bool {
        i < 64 && (self.0 >> i) & 1 == 1
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: KeySet) -> KeySet {
        KeySet(self.0 | other.0)
    }

    /// Inserts keyword `i`.
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < 64);
        self.0 |= 1 << i;
    }

    /// `self ⊆ other`.
    #[must_use]
    pub fn is_subset(self, other: KeySet) -> bool {
        self.0 & other.0 == self.0
    }

    /// `self ⊂ other` (strict) — the contributor test `dMatch(n) ⊂
    /// dMatch(n2)` of MaxMatch and rule 2(a) of Definition 4.
    #[must_use]
    pub fn is_strict_subset(self, other: KeySet) -> bool {
        self != other && self.is_subset(other)
    }

    /// `true` when the set covers all `k` query keywords.
    #[must_use]
    pub fn covers_query(self, k: usize) -> bool {
        Self::full(k).is_subset(self)
    }

    /// Number of keywords present.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// The paper's key number for a `k`-keyword query: keyword `w_1`
    /// weighs `2^(k-1)`, keyword `w_k` weighs `2^0`.
    #[must_use]
    pub fn key_number(self, k: usize) -> u64 {
        debug_assert!((1..=64).contains(&k));
        let mut n = 0u64;
        for i in 0..k {
            if self.contains(i) {
                n |= 1 << (k - 1 - i);
            }
        }
        n
    }

    /// Iterates the keyword indices present, ascending.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..64).filter(move |&i| self.contains(i))
    }
}

impl fmt::Display for KeySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for i in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_algebra() {
        let mut s = KeySet::EMPTY;
        assert!(s.is_empty());
        s.insert(0);
        s.insert(3);
        assert!(s.contains(0) && s.contains(3) && !s.contains(1));
        assert_eq!(s.len(), 2);
        let t = KeySet::single(3);
        assert!(t.is_subset(s));
        assert!(t.is_strict_subset(s));
        assert!(!s.is_strict_subset(s));
        assert_eq!(s.union(KeySet::single(1)).len(), 3);
    }

    #[test]
    fn full_and_covers() {
        assert_eq!(KeySet::full(3), KeySet(0b111));
        assert_eq!(KeySet::full(64), KeySet(u64::MAX));
        assert!(KeySet(0b111).covers_query(3));
        assert!(!KeySet(0b101).covers_query(3));
        assert!(KeySet(0b1111).covers_query(3)); // superset still covers
    }

    #[test]
    fn paper_key_numbers_for_q3() {
        // Q3 = {VLDB, title, XML, keyword, search}, k = 5.
        // kList 0 1 1 1 1 (all but VLDB) → key number 15.
        let mut s = KeySet::EMPTY;
        for i in 1..5 {
            s.insert(i);
        }
        assert_eq!(s.key_number(5), 15);
        // kList 0 1 0 0 0 (title only) → 8.
        assert_eq!(KeySet::single(1).key_number(5), 8);
        // kList 0 0 1 1 1 (XML keyword search) → 7.
        let mut t = KeySet::EMPTY;
        for i in 2..5 {
            t.insert(i);
        }
        assert_eq!(t.key_number(5), 7);
    }

    #[test]
    fn key_number_order_reverses_bits_not_subsets() {
        // Subset relation is invariant under the convention flip.
        let a = KeySet(0b011); // w1, w2
        let b = KeySet(0b111);
        assert!(a.is_strict_subset(b));
        assert!(a.key_number(3) < b.key_number(3));
    }

    #[test]
    fn display_lists_indices() {
        let mut s = KeySet::EMPTY;
        s.insert(0);
        s.insert(2);
        assert_eq!(s.to_string(), "{0,2}");
        assert_eq!(KeySet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn iter_ascending() {
        let s = KeySet(0b101001);
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, [0, 3, 5]);
    }
}
