//! Sharded corpora: routing [`CorpusSource`] over N document
//! partitions, plus the scatter-gather execution the engine drives.
//!
//! # Topology
//!
//! A sharded corpus splits the document set (the top-level children of
//! the corpus root) into **contiguous ordinal ranges**, one shard per
//! range; shard 0 additionally owns the corpus root's own rows. Every
//! shard is an ordinary [`CorpusSource`] over its slice — an
//! `xks-persist` index file, a [`MemoryCorpus`](crate::MemoryCorpus)
//! over a partitioned table set, anything. [`ShardSet`] glues them back
//! into one logical corpus:
//!
//! * **keyword → postings** concatenates the per-shard lists in shard
//!   order — contiguity makes that a document-ordered merge with no
//!   k-way comparison;
//! * **Dewey → element** routes to the owning shard with one binary
//!   search over the range boundaries (`O(log shards)`, no fan-out).
//!
//! # Why scatter-gather happens *below* the anchor stages
//!
//! Per-shard end-to-end pipelines cannot be merged exactly: an ELCA
//! anchor may sit **above** the document level (the corpus root is an
//! interesting LCA whenever unshadowed witnesses live in different
//! documents — Example 3 of the paper's workload hits this constantly),
//! and such an anchor's fragment draws keyword nodes from *every*
//! shard. A shard searching alone either misses the anchor (its
//! keyword lists look empty for terms it doesn't hold) or reports a
//! root fragment covering only its slice. Either way the gathered
//! result would diverge from the unsharded engine.
//!
//! The engine therefore scatters only the **storage-bound** stages and
//! keeps the cheap in-memory pass global:
//!
//! 1. `getKeywordNodes` — fan out (shard × keyword) lookups across
//!    worker threads, gather by concatenation ([`ShardSet`] invariant
//!    above). Exactly the unsharded keyword-node sets come out.
//! 2. `getLCA` / `getRTF` — one single-pass scan over the merged
//!    stream, unchanged (it is allocation-free and memory-bound; a
//!    parallel version would buy nothing and lose determinism).
//! 3. `pruneRTF` — fan out per-RTF fragment construction; each lookup
//!    routes to the owning shard, root-anchored fragments transparently
//!    read from all of them. Gather preserves RTF order.
//!
//! Results are therefore **byte-identical** to the unsharded engine by
//! construction — not just on friendly workloads — which the workspace
//! pins against the golden digest in `tests/sharded_differential.rs`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use xks_index::{KeywordNodeSets, Query};
use xks_xmltree::Dewey;

use crate::engine::SearchEngine;
use crate::fragment::Fragment;
use crate::prune::{prune_owned, Policy};
use crate::rtf::Rtf;
use crate::scratch::QueryContext;
use crate::source::{CorpusSource, SourceElement, SourceError};

/// N corpus shards glued into one logical [`CorpusSource`] (see the
/// module docs for the topology and merge/routing invariants).
///
/// `ShardSet` is `Send + Sync` like every corpus source: one set can
/// back many engines and query threads at once behind an `Arc`.
/// Cloning is cheap — shard handles are `Arc`s — and clones share the
/// underlying shards (and, for disk shards, their pools and caches).
#[derive(Debug, Clone)]
pub struct ShardSet {
    shards: Vec<Arc<dyn CorpusSource>>,
    /// `first_docs[i]` is the first top-level document ordinal shard
    /// `i` owns; ranges are contiguous, so shard `i` ends where shard
    /// `i + 1` begins.
    first_docs: Vec<u32>,
    /// Optional per-shard keyword filters (`filters[i]` covers shard
    /// `i`'s vocabulary). Empty when the topology carries none; a
    /// `None` entry means that one shard has no filter. Filters have
    /// no false negatives, so a rejecting filter proves the shard's
    /// postings list is empty and the scatter may skip the lookup.
    filters: Vec<Option<crate::plan::KeywordFilter>>,
}

impl ShardSet {
    /// Builds a set from shards and their range starts.
    ///
    /// `first_docs` must have one entry per shard, start at 0 (shard 0
    /// owns the corpus root and the first documents), and be strictly
    /// increasing; anything else is a corrupted topology and comes back
    /// as a [`SourceError`].
    pub fn new(
        shards: Vec<Arc<dyn CorpusSource>>,
        first_docs: Vec<u32>,
    ) -> Result<Self, SourceError> {
        if shards.is_empty() {
            return Err(SourceError::new("shard set holds no shards"));
        }
        if shards.len() != first_docs.len() {
            return Err(SourceError::new(format!(
                "{} shards but {} range starts",
                shards.len(),
                first_docs.len()
            )));
        }
        if first_docs[0] != 0 {
            return Err(SourceError::new(format!(
                "shard 0 must start at document 0, found {}",
                first_docs[0]
            )));
        }
        if !first_docs.windows(2).all(|w| w[0] < w[1]) {
            return Err(SourceError::new(
                "shard range starts must be strictly increasing",
            ));
        }
        Ok(ShardSet {
            shards,
            first_docs,
            filters: Vec::new(),
        })
    }

    /// Builds a set like [`ShardSet::new`] and attaches per-shard
    /// keyword filters (one entry per shard, `None` where a shard has
    /// none). The scatter stage consults them to skip (keyword × shard)
    /// lookups a filter proves empty; filters must therefore have **no
    /// false negatives** over the shard's vocabulary or results will
    /// silently lose postings.
    pub fn with_filters(
        shards: Vec<Arc<dyn CorpusSource>>,
        first_docs: Vec<u32>,
        filters: Vec<Option<crate::plan::KeywordFilter>>,
    ) -> Result<Self, SourceError> {
        let mut set = Self::new(shards, first_docs)?;
        if filters.len() != set.shards.len() {
            return Err(SourceError::new(format!(
                "{} shards but {} keyword filters",
                set.shards.len(),
                filters.len()
            )));
        }
        set.filters = filters;
        Ok(set)
    }

    /// A single-shard set over any source (the degenerate topology —
    /// useful for differential tests and CLI fallbacks).
    #[must_use]
    pub fn single(shard: Arc<dyn CorpusSource>) -> Self {
        ShardSet {
            shards: vec![shard],
            first_docs: vec![0],
            filters: Vec::new(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in document order.
    #[must_use]
    pub fn shards(&self) -> &[Arc<dyn CorpusSource>] {
        &self.shards
    }

    /// First top-level document ordinal of each shard.
    #[must_use]
    pub fn first_docs(&self) -> &[u32] {
        &self.first_docs
    }

    /// Index of the shard owning `dewey`: codes at or above the
    /// document level (the corpus root) belong to shard 0; everything
    /// else routes by its top-level ordinal. Codes past the last range
    /// route to the last shard, which simply reports them absent.
    #[must_use]
    pub fn owning_shard(&self, dewey: &Dewey) -> usize {
        match dewey.components().get(1) {
            None => 0,
            Some(&ordinal) => self.first_docs.partition_point(|&f| f <= ordinal) - 1,
        }
    }

    /// The shard owning `dewey`, as a source.
    #[must_use]
    pub fn route(&self, dewey: &Dewey) -> &Arc<dyn CorpusSource> {
        &self.shards[self.owning_shard(dewey)]
    }

    /// Whether shard `shard` can possibly hold postings for `keyword`.
    /// `true` when the shard carries no filter (unknown ⇒ must probe);
    /// `false` only on a filter rejection, which is a proof of absence.
    #[must_use]
    pub fn shard_may_contain(&self, shard: usize, keyword: &str) -> bool {
        match self.filters.get(shard) {
            Some(Some(filter)) => filter.may_contain(keyword),
            _ => true,
        }
    }

    /// How many of the set's shards prove (via their keyword filter)
    /// that they hold no postings for `keyword` — the lookups the
    /// scatter stage skips for this term.
    #[must_use]
    pub fn shard_skips(&self, keyword: &str) -> u32 {
        (0..self.shards.len())
            .filter(|&i| !self.shard_may_contain(i, keyword))
            .count() as u32
    }
}

impl CorpusSource for ShardSet {
    fn keyword_deweys(&self, keyword: &str) -> Vec<Dewey> {
        self.try_keyword_deweys(keyword)
            .unwrap_or_else(|e| panic!("sharded keyword lookup failed: {e}"))
    }

    fn element(&self, dewey: &Dewey) -> Option<SourceElement> {
        self.route(dewey).element(dewey)
    }

    fn element_label(&self, dewey: &Dewey) -> Option<u32> {
        self.route(dewey).element_label(dewey)
    }

    fn label_name(&self, label: u32) -> Option<String> {
        // Label tables are replicated in full across shards (a
        // partition invariant — `xks_store::partition`), so any shard
        // answers for the whole corpus.
        self.shards[0].label_name(label)
    }

    fn node_count(&self) -> usize {
        self.shards.iter().map(|s| s.node_count()).sum()
    }

    fn keyword_stats(&self, keyword: &str) -> Option<crate::plan::KeywordStats> {
        // Sealed only when every shard knows its stats; one unknown
        // shard makes the whole sum unknown. Filter-rejected shards
        // contribute provable zeros without being probed.
        let mut total = crate::plan::KeywordStats::default();
        for (i, shard) in self.shards.iter().enumerate() {
            if !self.shard_may_contain(i, keyword) {
                continue;
            }
            let stats = shard.keyword_stats(keyword)?;
            total.postings += stats.postings;
            total.docs += stats.docs;
        }
        Some(total)
    }

    fn try_keyword_deweys(&self, keyword: &str) -> Result<Vec<Dewey>, SourceError> {
        // Contiguous document ranges ⇒ concatenation in shard order IS
        // document order; disjoint ranges ⇒ nothing to dedup.
        let mut lists = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            lists.push(shard.try_keyword_deweys(keyword)?);
        }
        let mut merged = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        for list in lists {
            merged.extend(list);
        }
        debug_assert!(merged.is_sorted(), "shard ranges out of document order");
        Ok(merged)
    }

    fn try_element(&self, dewey: &Dewey) -> Result<Option<SourceElement>, SourceError> {
        self.route(dewey).try_element(dewey)
    }

    fn try_element_label(&self, dewey: &Dewey) -> Result<Option<u32>, SourceError> {
        self.route(dewey).try_element_label(dewey)
    }
}

/// Runs the cursor-strided scatter loop shared by both fan-out stages:
/// `threads` workers (inline when 1) claim task indices from one atomic
/// cursor — the same work-stealing shape as [`crate::executor`] — each
/// holding one warm [`QueryContext`] drawn from the engine's pool, and
/// results land in input order.
fn scatter<T: Send>(
    engine: &SearchEngine,
    tasks: usize,
    threads: usize,
    task: impl Fn(usize, &mut QueryContext) -> T + Sync,
) -> Vec<T> {
    let threads = threads.clamp(1, tasks.max(1));
    let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    if threads == 1 {
        let mut ctx = engine.checkout_context();
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(task(i, &mut ctx));
        }
        engine.checkin_context(ctx);
    } else {
        let cursor = AtomicUsize::new(0);
        let task = &task;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let cursor = &cursor;
                handles.push(scope.spawn(move || {
                    let mut ctx = engine.checkout_context();
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        mine.push((i, task(i, &mut ctx)));
                    }
                    engine.checkin_context(ctx);
                    mine
                }));
            }
            for handle in handles {
                for (i, result) in handle.join().expect("scatter worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("every scatter task claimed exactly once"))
        .collect()
}

/// `getKeywordNodes`, scattered: every (keyword × shard) lookup is one
/// task; the gather concatenates per-shard lists in shard order (see
/// the module docs for why that IS document order). Returns `None` when
/// a keyword matches nothing in **any** shard — the same empty-result
/// contract as unsharded resolution, even when individual shards lack
/// the term. Lookups a shard's keyword filter proves empty are skipped
/// without touching the shard; `skipped` counts them (exactness is
/// preserved because filters have no false negatives — a skipped lookup
/// would have returned an empty list).
pub(crate) fn scatter_resolve(
    engine: &SearchEngine,
    set: &ShardSet,
    threads: usize,
    query: &Query,
    skipped: &mut u32,
) -> Result<Option<KeywordNodeSets>, SourceError> {
    let keywords = query.keywords();
    let shards = set.shards();
    *skipped = keywords.iter().map(|kw| set.shard_skips(kw)).sum();
    let lists = scatter(
        engine,
        keywords.len() * shards.len(),
        threads,
        |i, ctx| -> Result<Vec<Dewey>, SourceError> {
            let shard_idx = i % shards.len();
            let keyword = &keywords[i / shards.len()];
            if !set.shard_may_contain(shard_idx, keyword) {
                return Ok(Vec::new());
            }
            // Decode into the context's warm arena (reused across every
            // shard this worker visits), bypassing shard-shared caches.
            shards[shard_idx].try_keyword_deweys_into(keyword, &mut ctx.postings)?;
            Ok(ctx.postings.to_deweys())
        },
    );
    let mut lists = lists.into_iter();
    let mut sets: Vec<Vec<Dewey>> = Vec::with_capacity(keywords.len());
    for _ in 0..keywords.len() {
        let per_shard: Vec<Vec<Dewey>> = lists
            .by_ref()
            .take(shards.len())
            .collect::<Result<_, _>>()?;
        let total: usize = per_shard.iter().map(Vec::len).sum();
        if total == 0 {
            return Ok(None);
        }
        let mut merged = Vec::with_capacity(total);
        for list in per_shard {
            merged.extend(list);
        }
        sets.push(merged);
    }
    Ok(Some(KeywordNodeSets::new(query.clone(), sets)))
}

/// `pruneRTF`, scattered: one task per RTF, constructed through the
/// set's routing source (so a root-anchored RTF transparently reads
/// from every shard it spans) and pruned in place by the worker. The
/// gather preserves RTF (anchor document) order; the first backend
/// error aborts the whole stage.
pub(crate) fn scatter_construct(
    engine: &SearchEngine,
    set: &ShardSet,
    threads: usize,
    rtfs: &[Rtf],
    policy: Policy,
) -> Result<Vec<Fragment>, SourceError> {
    scatter(
        engine,
        rtfs.len(),
        threads,
        |i, _ctx| -> Result<Fragment, SourceError> {
            let raw = Fragment::try_construct_from_source(set, &rtfs[i])?;
            Ok(prune_owned(raw, policy))
        },
    )
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MemoryCorpus;
    use xks_store::{partition, shred};
    use xks_xmltree::fixtures::publications;

    fn sharded(parts: usize) -> (ShardSet, MemoryCorpus) {
        let doc = shred(&publications());
        let whole = MemoryCorpus::new(doc.clone());
        let split = partition(&doc, parts);
        let first_docs: Vec<u32> = split.iter().map(|p| p.first_doc).collect();
        let shards: Vec<Arc<dyn CorpusSource>> = split
            .into_iter()
            .map(|p| Arc::new(MemoryCorpus::new(p.doc)) as Arc<dyn CorpusSource>)
            .collect();
        (ShardSet::new(shards, first_docs).unwrap(), whole)
    }

    #[test]
    fn merged_postings_match_unsharded() {
        for parts in [1, 2, 3] {
            let (set, whole) = sharded(parts);
            for kw in ["liu", "keyword", "xml", "publications", "unobtainium"] {
                assert_eq!(
                    set.try_keyword_deweys(kw).unwrap(),
                    whole.keyword_deweys(kw),
                    "{kw} with {parts} parts"
                );
            }
        }
    }

    #[test]
    fn element_lookups_route_to_the_owner() {
        let (set, whole) = sharded(3);
        // Root and deep nodes alike.
        for dewey in ["0", "0.0", "0.2.0.1", "0.2.1.1", "0.9.9"] {
            let d: Dewey = dewey.parse().unwrap();
            assert_eq!(set.element(&d), whole.element(&d), "{dewey}");
            assert_eq!(set.element_label(&d), whole.element_label(&d));
        }
        assert_eq!(set.node_count(), whole.node_count());
        assert_eq!(set.label_name(0), whole.label_name(0));
        assert!(set.owning_shard(&"0".parse().unwrap()) == 0);
    }

    #[test]
    fn topology_validation_rejects_bad_inputs() {
        let (set, _) = sharded(2);
        let shards: Vec<Arc<dyn CorpusSource>> = set.shards().to_vec();
        assert!(ShardSet::new(Vec::new(), Vec::new()).is_err(), "no shards");
        assert!(
            ShardSet::new(shards.clone(), vec![0]).is_err(),
            "count mismatch"
        );
        assert!(
            ShardSet::new(shards.clone(), vec![1, 2]).is_err(),
            "must start at 0"
        );
        assert!(
            ShardSet::new(shards.clone(), vec![0, 0]).is_err(),
            "must strictly increase"
        );
        assert!(ShardSet::new(shards, vec![0, 2]).is_ok());
    }

    #[test]
    fn set_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardSet>();
    }

    fn shard_tree(tree: &xks_xmltree::XmlTree, parts: usize) -> ShardSet {
        let doc = shred(tree);
        let split = partition(&doc, parts);
        let first_docs: Vec<u32> = split.iter().map(|p| p.first_doc).collect();
        let shards: Vec<Arc<dyn CorpusSource>> = split
            .into_iter()
            .map(|p| Arc::new(MemoryCorpus::new(p.doc)) as Arc<dyn CorpusSource>)
            .collect();
        ShardSet::new(shards, first_docs).unwrap()
    }

    #[test]
    fn sharded_engine_matches_unsharded_for_every_thread_count() {
        use crate::request::SearchRequest;
        let tree = publications();
        let whole = crate::engine::SearchEngine::from_owned_source(MemoryCorpus::new(shred(&tree)));
        for parts in [1, 2, 3] {
            for threads in [1, 2, 4] {
                let engine = crate::engine::SearchEngine::from_shard_set(shard_tree(&tree, parts))
                    .with_scatter_threads(threads);
                assert_eq!(engine.scatter_threads(), Some(threads));
                assert_eq!(engine.shard_set().unwrap().shard_count(), parts);
                for text in xks_xmltree::fixtures::PAPER_QUERIES {
                    let request = SearchRequest::parse(text).unwrap();
                    assert_eq!(
                        whole.execute(&request).unwrap().hits,
                        engine.execute(&request).unwrap().hits,
                        "{text} ({parts} shards, {threads} threads)"
                    );
                }
            }
        }
    }

    #[test]
    fn root_anchored_fragments_span_shards_exactly() {
        use crate::request::SearchRequest;
        // "alpha" lives only in document 0, "beta" only in document 1:
        // the sole interesting LCA is the corpus root, whose fragment
        // draws keyword nodes from BOTH shards. Per-shard pipelines
        // would miss it entirely (each shard lacks one keyword); the
        // scatter-below-anchors design must reproduce it byte for byte.
        let tree = xks_xmltree::parse(
            "<lib><a><t>alpha</t></a><b><t>beta</t></b><c><t>gamma</t></c></lib>",
        )
        .unwrap();
        let whole = crate::engine::SearchEngine::from_owned_source(MemoryCorpus::new(shred(&tree)));
        let request = SearchRequest::parse("alpha beta").unwrap();
        let expect = whole.execute(&request).unwrap();
        assert_eq!(expect.hits.len(), 1, "root anchor exists unsharded");
        assert_eq!(expect.hits[0].fragment.anchor.to_string(), "0");
        for parts in [2, 3] {
            let engine = crate::engine::SearchEngine::from_shard_set(shard_tree(&tree, parts))
                .with_scatter_threads(2);
            let got = engine.execute(&request).unwrap();
            assert_eq!(expect.hits, got.hits, "{parts} shards");
            // And the ranked/top-k merge shapes identically too.
            let ranked = request.clone().top_k(1);
            assert_eq!(
                whole.execute(&ranked).unwrap().hits,
                engine.execute(&ranked).unwrap().hits,
            );
        }
    }

    /// Shards the fixture with an exact per-shard keyword filter built
    /// from each part's vocabulary.
    fn sharded_filtered(parts: usize) -> (ShardSet, MemoryCorpus) {
        let doc = shred(&publications());
        let whole = MemoryCorpus::new(doc.clone());
        let split = partition(&doc, parts);
        let first_docs: Vec<u32> = split.iter().map(|p| p.first_doc).collect();
        let filters: Vec<Option<crate::plan::KeywordFilter>> = split
            .iter()
            .map(|p| {
                Some(crate::plan::KeywordFilter::from_keywords(
                    p.doc.keyword_stats().map(|(kw, _)| kw),
                ))
            })
            .collect();
        let shards: Vec<Arc<dyn CorpusSource>> = split
            .into_iter()
            .map(|p| Arc::new(MemoryCorpus::new(p.doc)) as Arc<dyn CorpusSource>)
            .collect();
        (
            ShardSet::with_filters(shards, first_docs, filters).unwrap(),
            whole,
        )
    }

    #[test]
    fn keyword_filters_skip_shards_without_changing_results() {
        use crate::request::SearchRequest;
        let whole = crate::engine::SearchEngine::from_owned_source(MemoryCorpus::new(shred(
            &publications(),
        )));
        for parts in [2, 3] {
            let (set, _) = sharded_filtered(parts);
            // "liu" lives in one document only: at least one shard's
            // filter must prove it absent.
            assert!(set.shard_skips("liu") > 0, "{parts} parts");
            assert_eq!(set.shard_skips("unobtainium"), parts as u32);
            let engine = crate::engine::SearchEngine::from_shard_set(set).with_scatter_threads(2);
            for text in xks_xmltree::fixtures::PAPER_QUERIES {
                let request = SearchRequest::parse(text).unwrap();
                assert_eq!(
                    whole.execute(&request).unwrap().hits,
                    engine.execute(&request).unwrap().hits,
                    "{text} ({parts} parts)"
                );
            }
            let r = engine
                .execute(&SearchRequest::parse("liu keyword").unwrap())
                .unwrap();
            assert!(r.stats.shards_skipped > 0, "skips surface in the stats");
        }
    }

    #[test]
    fn set_keyword_stats_sum_across_shards() {
        let (set, whole) = sharded_filtered(3);
        for kw in ["liu", "keyword", "xml", "unobtainium"] {
            assert_eq!(
                set.keyword_stats(kw),
                whole.keyword_stats(kw),
                "{kw}: sharded sum matches unsharded"
            );
        }
        // A shard without stats makes the whole sum unknown.
        let (plain, _) = sharded(2);
        #[derive(Debug)]
        struct Opaque(Arc<dyn CorpusSource>);
        impl CorpusSource for Opaque {
            fn keyword_deweys(&self, keyword: &str) -> Vec<Dewey> {
                self.0.keyword_deweys(keyword)
            }
            fn element(&self, dewey: &Dewey) -> Option<SourceElement> {
                self.0.element(dewey)
            }
            fn label_name(&self, label: u32) -> Option<String> {
                self.0.label_name(label)
            }
            fn node_count(&self) -> usize {
                self.0.node_count()
            }
        }
        let mut shards = plain.shards().to_vec();
        shards[1] = Arc::new(Opaque(Arc::clone(&shards[1])));
        let mixed = ShardSet::new(shards, plain.first_docs().to_vec()).unwrap();
        assert_eq!(mixed.keyword_stats("keyword"), None);
    }

    #[test]
    fn filter_count_must_match_shard_count() {
        let (set, _) = sharded(2);
        assert!(ShardSet::with_filters(
            set.shards().to_vec(),
            set.first_docs().to_vec(),
            vec![None]
        )
        .is_err());
        let ok = ShardSet::with_filters(
            set.shards().to_vec(),
            set.first_docs().to_vec(),
            vec![None, None],
        )
        .unwrap();
        assert!(ok.shard_may_contain(0, "anything"), "no filter ⇒ probe");
        assert_eq!(ok.shard_skips("anything"), 0);
    }

    #[test]
    fn scatter_surfaces_backend_errors_typed() {
        use crate::request::SearchRequest;
        /// A shard whose postings lookups always fail.
        #[derive(Debug)]
        struct DeadShard;
        impl CorpusSource for DeadShard {
            fn keyword_deweys(&self, _: &str) -> Vec<Dewey> {
                panic!("legacy accessor unused")
            }
            fn element(&self, _: &Dewey) -> Option<SourceElement> {
                None
            }
            fn label_name(&self, _: u32) -> Option<String> {
                None
            }
            fn node_count(&self) -> usize {
                0
            }
            fn try_keyword_deweys(&self, _: &str) -> Result<Vec<Dewey>, SourceError> {
                Err(SourceError::new("synthetic shard I/O failure"))
            }
        }
        let tree = publications();
        let healthy = shard_tree(&tree, 2);
        let mut shards = healthy.shards().to_vec();
        shards.push(Arc::new(DeadShard));
        let set = ShardSet::new(shards, vec![0, healthy.first_docs()[1], u32::MAX]).unwrap();
        let engine = crate::engine::SearchEngine::from_shard_set(set).with_scatter_threads(2);
        let err = engine
            .execute(&SearchRequest::parse("liu keyword").unwrap())
            .unwrap_err();
        assert!(
            matches!(err, crate::request::SearchError::Backend(_)),
            "{err}"
        );
        assert!(err.to_string().contains("shard I/O failure"));
    }
}
