//! Corpus-source abstraction: one interface over every storage backend.
//!
//! The paper's algorithms only ever ask two questions of the storage
//! layer (§5.2: everything else is derived from the shredded tables):
//!
//! 1. *keyword → sorted Dewey codes* of its keyword nodes
//!    (`getKeywordNodes`), and
//! 2. *Dewey → node facts* — label, level, and the content feature of
//!    the node's own content `Cv` (what `pruneRTF`'s constructing step
//!    seeds keyword nodes with).
//!
//! [`CorpusSource`] captures exactly that, so ValidRTF/MaxMatch run
//! identically over the in-memory [`ShreddedDoc`] tables (via
//! [`MemoryCorpus`]) or an `xks-persist` on-disk index opened with a
//! buffer pool — see [`crate::engine::SearchEngine::from_source`] and
//! [`crate::algorithms::run_source`].

use std::collections::HashMap;
use std::fmt;

use xks_index::{KeywordNodeSets, Query};
use xks_store::ShreddedDoc;
use xks_xmltree::Dewey;

use crate::fragment::Cid;

/// A storage-backend failure surfaced on the query path — the typed
/// alternative to the panics the infallible [`CorpusSource`] accessors
/// raise. Wraps whatever error the backend produces (`xks-persist`'s
/// `PersistError`, an I/O error, …) so `validrtf` stays independent of
/// any particular storage crate.
#[derive(Debug)]
pub struct SourceError(Box<dyn std::error::Error + Send + Sync + 'static>);

impl SourceError {
    /// Wraps a backend error.
    pub fn new(error: impl Into<Box<dyn std::error::Error + Send + Sync + 'static>>) -> Self {
        SourceError(error.into())
    }

    /// The error for an RTF referencing a node the corpus does not
    /// contain — keyword nodes always come from the same corpus, so
    /// this indicates a corrupted index.
    #[must_use]
    pub fn missing_node(dewey: &Dewey) -> Self {
        SourceError::new(format!("node {dewey} is missing from the corpus"))
    }

    /// The wrapped backend error.
    #[must_use]
    pub fn inner(&self) -> &(dyn std::error::Error + Send + Sync + 'static) {
        self.0.as_ref()
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "storage backend error: {}", self.0)
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.0.as_ref() as &(dyn std::error::Error + 'static))
    }
}

/// The per-node facts a fragment constructor needs from storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceElement {
    /// Label id (resolve via [`CorpusSource::label_name`]).
    pub label: u32,
    /// Depth of the node (root = 0).
    pub level: u32,
    /// Content feature of the node's **own** content `Cv` — the
    /// `(min, max)` word pair seeding keyword nodes in the
    /// constructing step (§4.1). `None` for content-free nodes.
    pub keyword_cid: Cid,
    /// Content feature of the node's whole subtree — the `element`
    /// table's `cID` column (§5.2).
    pub subtree_cid: Cid,
}

/// A read-only corpus: the storage interface of Algorithm 1.
///
/// Implementations must present postings **sorted in document order and
/// deduplicated**, and label ids consistent between
/// [`CorpusSource::element`] and [`CorpusSource::label_name`].
///
/// The trait requires `Send + Sync`: a corpus is the shared immutable
/// half of the read path (the *index handle*), designed to back many
/// engines and query threads at once behind an `Arc` — all per-query
/// mutable state lives in a per-thread
/// [`QueryContext`](crate::QueryContext) instead.
pub trait CorpusSource: std::fmt::Debug + Send + Sync {
    /// Sorted Dewey codes of the keyword nodes for `keyword`
    /// (empty when the keyword is absent).
    fn keyword_deweys(&self, keyword: &str) -> Vec<Dewey>;

    /// The stored facts for one node, `None` if `dewey` is not in the
    /// corpus.
    fn element(&self, dewey: &Dewey) -> Option<SourceElement>;

    /// The label id of one node only — what the fragment constructor
    /// needs for the (far more numerous) non-keyword path nodes.
    /// Backends override this to skip materializing the content-feature
    /// strings a full [`CorpusSource::element`] carries.
    fn element_label(&self, dewey: &Dewey) -> Option<u32> {
        self.element(dewey).map(|e| e.label)
    }

    /// The label string for a label id, `None` for a foreign id.
    fn label_name(&self, label: u32) -> Option<String>;

    /// Number of element nodes in the corpus.
    fn node_count(&self) -> usize;

    /// Sealed selectivity statistics for `keyword`, `None` when the
    /// backend has no sealed stats for it (the planner then falls back
    /// to the full merge — see [`crate::plan`]). `Some` with zero
    /// counts means the keyword is known absent. The default is
    /// *unknown*, so existing backends stay on the legacy path until
    /// they opt in.
    fn keyword_stats(&self, _keyword: &str) -> Option<crate::plan::KeywordStats> {
        None
    }

    /// Resolves a query to its `D_1..D_k` keyword-node sets
    /// (`getKeywordNodes`); `None` when some keyword has no match.
    fn resolve(&self, query: &Query) -> Option<KeywordNodeSets> {
        let mut sets = Vec::with_capacity(query.len());
        for kw in query.keywords() {
            let list = self.keyword_deweys(kw);
            if list.is_empty() {
                return None;
            }
            sets.push(list);
        }
        Some(KeywordNodeSets::new(query.clone(), sets))
    }

    // ---- fallible accessors -------------------------------------------
    //
    // The `try_` family is what `SearchEngine::execute` drives: backends
    // that can fail after opening (an on-disk index hitting I/O errors
    // or latent corruption) override these to surface a typed
    // [`SourceError`] instead of panicking. The defaults delegate to
    // the infallible accessors, so purely in-memory backends implement
    // nothing extra.

    /// Fallible form of [`CorpusSource::keyword_deweys`].
    fn try_keyword_deweys(&self, keyword: &str) -> Result<Vec<Dewey>, SourceError> {
        Ok(self.keyword_deweys(keyword))
    }

    /// Fallible form of [`CorpusSource::element`].
    fn try_element(&self, dewey: &Dewey) -> Result<Option<SourceElement>, SourceError> {
        Ok(self.element(dewey))
    }

    /// Fallible form of [`CorpusSource::element_label`].
    fn try_element_label(&self, dewey: &Dewey) -> Result<Option<u32>, SourceError> {
        Ok(self.element_label(dewey))
    }

    /// Decodes `keyword`'s postings into a **caller-owned** arena
    /// (cleared first), returning the number of codes. The default
    /// delegates to [`CorpusSource::try_keyword_deweys`] and repacks;
    /// disk backends override it with their cache-bypassing decode
    /// (`xks-persist`'s `IndexReader::keyword_postings_into`) so a
    /// scatter worker sweeping many shards reuses one warm per-thread
    /// arena instead of churning every shard's shared postings LRU.
    fn try_keyword_deweys_into(
        &self,
        keyword: &str,
        arena: &mut xks_xmltree::DeweyListBuf,
    ) -> Result<usize, SourceError> {
        arena.clear();
        for dewey in self.try_keyword_deweys(keyword)? {
            arena.push(dewey.components());
        }
        Ok(arena.len())
    }

    /// Fallible form of [`CorpusSource::resolve`] — built on
    /// [`CorpusSource::try_keyword_deweys`], so overriding that one
    /// method is enough to make resolution error-aware.
    fn try_resolve(&self, query: &Query) -> Result<Option<KeywordNodeSets>, SourceError> {
        let mut sets = Vec::with_capacity(query.len());
        for kw in query.keywords() {
            let list = self.try_keyword_deweys(kw)?;
            if list.is_empty() {
                return Ok(None);
            }
            sets.push(list);
        }
        Ok(Some(KeywordNodeSets::new(query.clone(), sets)))
    }
}

macro_rules! delegate_corpus_source {
    ($($ptr:ident),*) => {$(
        /// Delegation so engines can share a source with outside
        /// observers (e.g. keep reading an index reader's stats while a
        /// `SearchEngine` owns it). `Rc` deliberately has no delegation:
        /// a corpus is the shared `Send + Sync` half of the read path,
        /// so cross-owner sharing goes through `Arc`.
        impl<S: CorpusSource + ?Sized> CorpusSource for $ptr<S> {
            fn keyword_deweys(&self, keyword: &str) -> Vec<Dewey> {
                (**self).keyword_deweys(keyword)
            }
            fn element(&self, dewey: &Dewey) -> Option<SourceElement> {
                (**self).element(dewey)
            }
            fn element_label(&self, dewey: &Dewey) -> Option<u32> {
                (**self).element_label(dewey)
            }
            fn label_name(&self, label: u32) -> Option<String> {
                (**self).label_name(label)
            }
            fn node_count(&self) -> usize {
                (**self).node_count()
            }
            fn keyword_stats(&self, keyword: &str) -> Option<crate::plan::KeywordStats> {
                (**self).keyword_stats(keyword)
            }
            fn resolve(&self, query: &Query) -> Option<KeywordNodeSets> {
                (**self).resolve(query)
            }
            fn try_keyword_deweys(&self, keyword: &str) -> Result<Vec<Dewey>, SourceError> {
                (**self).try_keyword_deweys(keyword)
            }
            fn try_element(&self, dewey: &Dewey) -> Result<Option<SourceElement>, SourceError> {
                (**self).try_element(dewey)
            }
            fn try_element_label(&self, dewey: &Dewey) -> Result<Option<u32>, SourceError> {
                (**self).try_element_label(dewey)
            }
            fn try_keyword_deweys_into(
                &self,
                keyword: &str,
                arena: &mut xks_xmltree::DeweyListBuf,
            ) -> Result<usize, SourceError> {
                (**self).try_keyword_deweys_into(keyword, arena)
            }
            fn try_resolve(
                &self,
                query: &Query,
            ) -> Result<Option<KeywordNodeSets>, SourceError> {
                (**self).try_resolve(query)
            }
        }
    )*};
}

use std::sync::Arc;
delegate_corpus_source!(Box, Arc);

/// The in-memory backend: shredded tables plus the derived own-content
/// features (the shredder stores subtree features only; the keyword-node
/// seed needs the node's own `Cv` feature, so we compute it once from
/// the `value` table here).
///
/// Posting lists are parsed out of the tables' dotted-string form
/// **once**, at construction — the shredded tables store Dewey codes as
/// strings, and re-parsing them per query dominated the warm hot path.
#[derive(Debug)]
pub struct MemoryCorpus {
    doc: ShreddedDoc,
    postings: HashMap<String, Vec<Dewey>>,
    elements: HashMap<Dewey, SourceElement>,
    stats: HashMap<String, crate::plan::KeywordStats>,
}

impl MemoryCorpus {
    /// Wraps a shredded document (derived lookups must already be
    /// rebuilt, which [`xks_store::shred()`] and the snapshot loader do).
    ///
    /// Element facts are keyed by parsed [`Dewey`] here — the tables
    /// key rows by dotted strings, and formatting a code per lookup
    /// (`dewey.to_string()`) used to dominate warm fragment
    /// construction.
    #[must_use]
    pub fn new(doc: ShreddedDoc) -> Self {
        let own_features = own_content_features(&doc);
        let postings: HashMap<String, Vec<Dewey>> = doc
            .keyword_stats()
            .map(|(kw, _)| (kw.to_owned(), doc.keyword_deweys(kw)))
            .collect();
        let elements = doc
            .elements
            .iter()
            .map(|row| {
                let dewey: Dewey = row.dewey.parse().expect("stored dewey is valid");
                let element = SourceElement {
                    label: row.label,
                    level: row.level,
                    keyword_cid: own_features.get(&row.dewey).cloned(),
                    subtree_cid: row.content_feature.clone(),
                };
                (dewey, element)
            })
            .collect();
        let stats = postings
            .iter()
            .map(|(kw, deweys)| {
                let stats = crate::plan::KeywordStats {
                    postings: deweys.len() as u64,
                    docs: crate::plan::doc_frequency(deweys),
                };
                (kw.clone(), stats)
            })
            .collect();
        MemoryCorpus {
            doc,
            postings,
            elements,
            stats,
        }
    }

    /// The wrapped tables.
    #[must_use]
    pub fn doc(&self) -> &ShreddedDoc {
        &self.doc
    }
}

/// Computes each node's own-content `(min, max)` feature from the
/// `value` table (the node's value rows *are* its content set `Cv`).
#[must_use]
pub fn own_content_features(doc: &ShreddedDoc) -> HashMap<String, (String, String)> {
    let mut features: HashMap<String, (String, String)> = HashMap::new();
    for row in &doc.values {
        match features.get_mut(&row.dewey) {
            None => {
                features.insert(
                    row.dewey.clone(),
                    (row.keyword.clone(), row.keyword.clone()),
                );
            }
            Some((min, max)) => {
                if row.keyword < *min {
                    min.clone_from(&row.keyword);
                }
                if row.keyword > *max {
                    max.clone_from(&row.keyword);
                }
            }
        }
    }
    features
}

impl CorpusSource for MemoryCorpus {
    fn keyword_deweys(&self, keyword: &str) -> Vec<Dewey> {
        // One memcpy-style clone of the pre-parsed list; the codes
        // themselves are inline for ordinary document depths.
        self.postings.get(keyword).cloned().unwrap_or_default()
    }

    fn element(&self, dewey: &Dewey) -> Option<SourceElement> {
        self.elements.get(dewey).cloned()
    }

    fn element_label(&self, dewey: &Dewey) -> Option<u32> {
        self.elements.get(dewey).map(|e| e.label)
    }

    fn label_name(&self, label: u32) -> Option<String> {
        self.doc.labels.get(label as usize).cloned()
    }

    fn node_count(&self) -> usize {
        self.doc.element_count()
    }

    fn keyword_stats(&self, keyword: &str) -> Option<crate::plan::KeywordStats> {
        // In-memory postings are sealed by construction; absent
        // keywords are known absent (zero stats), not unknown.
        Some(self.stats.get(keyword).copied().unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xks_store::shred;
    use xks_xmltree::fixtures::publications;

    fn corpus() -> MemoryCorpus {
        MemoryCorpus::new(shred(&publications()))
    }

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    #[test]
    fn keyword_deweys_match_tables() {
        let c = corpus();
        let liu: Vec<String> = c
            .keyword_deweys("liu")
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(liu, ["0.2.0.0.0.0", "0.2.0.3.0"]);
        assert!(c.keyword_deweys("unobtainium").is_empty());
    }

    #[test]
    fn element_exposes_own_and_subtree_features() {
        let c = corpus();
        // Leaf title node: own content = subtree content.
        let title = c.element(&d("0.2.0.1")).unwrap();
        assert_eq!(title.keyword_cid, Some(("keyword".into(), "xml".into())));
        assert_eq!(title.subtree_cid, Some(("keyword".into(), "xml".into())));
        assert_eq!(c.label_name(title.label).as_deref(), Some("title"));
        // Interior node: own feature spans only its own words, the
        // subtree feature spans all descendants.
        let articles = c.element(&d("0.2")).unwrap();
        assert_eq!(
            articles.keyword_cid,
            Some(("articles".into(), "articles".into()))
        );
        let (smin, smax) = articles.subtree_cid.clone().unwrap();
        assert!(smin.as_str() < "articles" || smax.as_str() > "articles");
        assert!(c.element(&d("0.9.9")).is_none());
    }

    #[test]
    fn resolve_builds_keyword_node_sets() {
        let c = corpus();
        let q = Query::parse("liu keyword").unwrap();
        let sets = c.resolve(&q).unwrap();
        assert_eq!(sets.len(), 2);
        assert_eq!(sets.set(0).len(), 2);
        assert!(c
            .resolve(&Query::parse("liu unobtainium").unwrap())
            .is_none());
    }

    #[test]
    fn label_name_bounds() {
        let c = corpus();
        assert!(c.label_name(0).is_some());
        assert!(c.label_name(9999).is_none());
        assert!(c.node_count() > 10);
    }
}
