//! Result-quality scoring for the workload matrix.
//!
//! Speed benchmarks alone cannot gate an optimization: a planner change
//! that drops fragments still "wins" on q/s. This module scores an
//! [`Algorithm`]'s output on a corpus + query set with
//! precision/recall-style metrics plus per-axiom violation counts, so
//! the `matrix` bench (and CI's `matrix-smoke` lane) can assert result
//! quality next to throughput.
//!
//! **Reference set.** The exponential Definition-1/2 oracle in
//! [`crate::spec`] cannot enumerate scenario-scale corpora, so the
//! reference is the paper's own answer: ValidRTF's fragments (all
//! interesting-LCA anchors, valid-contributor pruning — Definition 4's
//! meaningful set). Precision/recall are computed micro-averaged over
//! `(anchor, node)` pairs. This makes the scores *relative to the
//! paper's semantics*, which is exactly the gate we want: ValidRTF
//! scores 1.0 by construction, the revised MaxMatch keeps recall 1.0
//! but loses precision to false-positive contributors, and SLCA-based
//! MaxMatch loses recall at every missed (non-lowest) interesting LCA.
//!
//! **Axiom pass.** On top of the set overlap, each algorithm is run
//! through the four axiomatic property checkers of [`crate::axioms`]
//! under deterministic perturbations (a planted data insertion and a
//! query extension per sampled query). The result-level reading of data
//! consistency is used — the strict node-level reading is provably
//! violated by *all* RTF pruning policies (see
//! [`crate::axioms::check_data_consistency_strict`]) and would punish
//! every algorithm equally. The combined [`QualityReport::score`] is
//! `f1 × (1 − violations/checks)`.

use xks_index::{InvertedIndex, Query};
use xks_xmltree::{Dewey, XmlTree};

use crate::algorithms::{max_match_rtf, max_match_slca, valid_rtf};
use crate::axioms::{
    check_data_consistency, check_data_monotonicity, check_query_consistency,
    check_query_monotonicity, Algorithm,
};
use crate::fragment::Fragment;
use std::collections::BTreeSet;

/// Knobs for [`assess`]. The axiom pass re-runs the algorithm over
/// perturbed corpora (each check rebuilds indexes), so it is sampled
/// rather than exhaustive.
#[derive(Debug, Clone)]
pub struct QualityConfig {
    /// Cap on queries scored for precision/recall.
    pub max_queries: usize,
    /// Cap on queries put through the axiom perturbations.
    pub max_axiom_queries: usize,
    /// Seed for the deterministic choice of insertion points.
    pub seed: u64,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            max_queries: 64,
            max_axiom_queries: 4,
            seed: 0xA210_5EED,
        }
    }
}

impl QualityConfig {
    /// A config whose axiom pass is sized to the corpus: large trees
    /// get fewer perturbation samples (each one costs several index
    /// rebuilds).
    #[must_use]
    pub fn for_tree(tree: &XmlTree) -> Self {
        QualityConfig {
            max_axiom_queries: if tree.len() > 20_000 { 2 } else { 4 },
            ..QualityConfig::default()
        }
    }
}

/// Violation tallies from the axiom pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AxiomCounts {
    /// Total individual checks performed.
    pub checks: usize,
    /// Data-monotonicity violations.
    pub data_monotonicity: usize,
    /// Query-monotonicity violations.
    pub query_monotonicity: usize,
    /// Data-consistency violations (result-level reading).
    pub data_consistency: usize,
    /// Query-consistency violations.
    pub query_consistency: usize,
}

impl AxiomCounts {
    /// Total violations across the four axioms.
    #[must_use]
    pub fn violations(&self) -> usize {
        self.data_monotonicity
            + self.query_monotonicity
            + self.data_consistency
            + self.query_consistency
    }
}

/// Quality scores for one algorithm over one corpus + query set.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Queries scored.
    pub queries: usize,
    /// `(anchor, node)` pairs the algorithm returned (micro total).
    pub returned_pairs: usize,
    /// Pairs in the reference (ValidRTF) answer.
    pub reference_pairs: usize,
    /// Pairs in both.
    pub common_pairs: usize,
    /// `common / returned` (1.0 when nothing was returned).
    pub precision: f64,
    /// `common / reference` (1.0 when the reference is empty).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Axiom-pass tallies.
    pub axioms: AxiomCounts,
}

impl QualityReport {
    /// The combined axiom-derived quality score in `[0, 1]`:
    /// `f1 × (1 − violations / checks)`.
    #[must_use]
    pub fn score(&self) -> f64 {
        let axiom_factor = if self.axioms.checks == 0 {
            1.0
        } else {
            1.0 - self.axioms.violations() as f64 / self.axioms.checks as f64
        };
        self.f1 * axiom_factor
    }
}

/// The `(anchor, node)` pair set of a fragment list.
fn pair_set(fragments: &[Fragment]) -> BTreeSet<(Dewey, Dewey)> {
    let mut set = BTreeSet::new();
    for f in fragments {
        for d in f.deweys() {
            set.insert((f.anchor.clone(), d));
        }
    }
    set
}

/// splitmix64-style mixer for deterministic perturbation choices.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut h = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 33)
}

/// Scores `algo` on `tree` over `queries` against the ValidRTF
/// reference, including the sampled axiom pass.
#[must_use]
pub fn assess(
    tree: &XmlTree,
    queries: &[Query],
    algo: Algorithm,
    cfg: &QualityConfig,
) -> QualityReport {
    let index = InvertedIndex::build(tree);
    let mut report = QualityReport {
        queries: 0,
        returned_pairs: 0,
        reference_pairs: 0,
        common_pairs: 0,
        precision: 1.0,
        recall: 1.0,
        f1: 1.0,
        axioms: AxiomCounts::default(),
    };

    for query in queries.iter().take(cfg.max_queries) {
        let reference = pair_set(&valid_rtf(tree, &index, query));
        let returned = pair_set(&algo(tree, &index, query));
        report.queries += 1;
        report.returned_pairs += returned.len();
        report.reference_pairs += reference.len();
        report.common_pairs += returned.intersection(&reference).count();
    }

    report.precision = ratio(report.common_pairs, report.returned_pairs);
    report.recall = ratio(report.common_pairs, report.reference_pairs);
    report.f1 = if report.precision + report.recall > 0.0 {
        2.0 * report.precision * report.recall / (report.precision + report.recall)
    } else {
        0.0
    };

    report.axioms = axiom_pass(tree, queries, algo, cfg);
    report
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// Runs the four axiom checkers over deterministic perturbations of the
/// first [`QualityConfig::max_axiom_queries`] queries.
fn axiom_pass(
    tree: &XmlTree,
    queries: &[Query],
    algo: Algorithm,
    cfg: &QualityConfig,
) -> AxiomCounts {
    let mut counts = AxiomCounts::default();
    // Extension pool: every keyword appearing anywhere in the query
    // set (guaranteed to exist in the corpus for generated scenarios).
    let pool: Vec<&String> = queries.iter().flat_map(Query::keywords).collect();

    for (qi, query) in queries.iter().take(cfg.max_axiom_queries).enumerate() {
        // Perturbation 1: insert a node carrying the query's first
        // keyword under a deterministically-chosen parent.
        let keyword = &query.keywords()[0];
        let parent_rank = (mix(cfg.seed, qi as u64) % tree.len() as u64) as usize;
        let mut after = tree.clone();
        let parent = after.preorder().nth(parent_rank).expect("rank < len");
        let inserted_id = after.insert_subtree(parent, "probe", Some(keyword));
        let inserted = after.dewey(inserted_id).clone();

        counts.checks += 2;
        if !check_data_monotonicity(algo, tree, &after, query).holds() {
            counts.data_monotonicity += 1;
        }
        if !check_data_consistency(algo, tree, &after, &inserted, query).holds() {
            counts.data_consistency += 1;
        }

        // Perturbation 2: extend the query with a keyword drawn from
        // the pool that it does not already contain.
        let added = pool
            .iter()
            .find(|w| !query.keywords().contains(w))
            .map(|w| (*w).clone());
        if let Some(added) = added {
            if let Ok(extended) = query.with_keyword(&added) {
                counts.checks += 2;
                if !check_query_monotonicity(algo, tree, query, &extended).holds() {
                    counts.query_monotonicity += 1;
                }
                if !check_query_consistency(algo, tree, &extended, &added).holds() {
                    counts.query_consistency += 1;
                }
            }
        }
    }
    counts
}

/// The three paper algorithms in comparison order, with the names used
/// throughout benches and reports.
#[must_use]
pub fn algorithms() -> [(&'static str, Algorithm); 3] {
    [
        ("valid_rtf", valid_rtf as Algorithm),
        ("max_match_rtf", max_match_rtf as Algorithm),
        ("max_match_slca", max_match_slca as Algorithm),
    ]
}

/// Runs [`assess`] for ValidRTF, revised MaxMatch, and SLCA-MaxMatch.
#[must_use]
pub fn assess_all(
    tree: &XmlTree,
    queries: &[Query],
    cfg: &QualityConfig,
) -> Vec<(&'static str, QualityReport)> {
    algorithms()
        .into_iter()
        .map(|(name, algo)| (name, assess(tree, queries, algo, cfg)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xks_xmltree::TreeBuilder;

    /// A corpus where the root is an interesting LCA *above* an SLCA:
    /// `t` holds both keywords, while `u`/`v` witness them separately
    /// under `r` — so ELCA = {t, r} but SLCA = {t}.
    fn elca_above_slca() -> XmlTree {
        let mut b = TreeBuilder::new("r");
        b.open("s");
        b.leaf("t", "xml keyword");
        b.close();
        b.leaf("u", "xml");
        b.leaf("v", "keyword");
        b.build()
    }

    fn queries() -> Vec<Query> {
        vec![
            Query::parse("xml keyword").unwrap(),
            Query::parse("xml").unwrap(),
        ]
    }

    #[test]
    fn valid_rtf_is_the_fixed_point() {
        let tree = elca_above_slca();
        let report = assess(&tree, &queries(), valid_rtf, &QualityConfig::default());
        assert_eq!(report.precision, 1.0);
        assert_eq!(report.recall, 1.0);
        assert_eq!(report.axioms.violations(), 0);
        assert_eq!(report.score(), 1.0);
        assert!(report.axioms.checks > 0, "axiom pass must actually run");
    }

    #[test]
    fn slca_loses_recall_on_missed_anchor() {
        let tree = elca_above_slca();
        let report = assess(&tree, &queries(), max_match_slca, &QualityConfig::default());
        assert!(report.recall < 1.0, "recall {}", report.recall);
        assert!(report.score() < 1.0);
    }

    #[test]
    fn scores_are_ordered() {
        let tree = elca_above_slca();
        let reports = assess_all(&tree, &queries(), &QualityConfig::default());
        assert_eq!(reports.len(), 3);
        let valid = reports[0].1.score();
        for (name, report) in &reports[1..] {
            assert!(
                valid >= report.score(),
                "{name} scored {} > valid_rtf {valid}",
                report.score()
            );
        }
    }

    #[test]
    fn broken_algorithm_is_flagged() {
        // Duplicates every fragment for multi-keyword queries: breaks
        // query monotonicity (and precision stays 1.0 only because the
        // pair *set* dedups — the axiom pass is what catches it).
        fn broken(tree: &XmlTree, index: &InvertedIndex, query: &Query) -> Vec<Fragment> {
            let frags = valid_rtf(tree, index, query);
            if query.len() > 1 {
                frags.iter().cloned().chain(frags.clone()).collect()
            } else {
                frags
            }
        }
        let tree = elca_above_slca();
        let report = assess(
            &tree,
            &queries(),
            broken as Algorithm,
            &QualityConfig::default(),
        );
        assert!(report.axioms.violations() > 0, "{:?}", report.axioms);
        assert!(report.score() < report.f1);
    }

    #[test]
    fn score_bounds_hold() {
        let tree = elca_above_slca();
        for (_, report) in assess_all(&tree, &queries(), &QualityConfig::default()) {
            assert!((0.0..=1.0).contains(&report.precision));
            assert!((0.0..=1.0).contains(&report.recall));
            assert!((0.0..=1.0).contains(&report.f1));
            assert!((0.0..=1.0).contains(&report.score()));
        }
    }
}
