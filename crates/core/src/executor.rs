//! Concurrent query executor: many queries, one shared engine.
//!
//! The read path splits into a shared immutable half (the
//! [`SearchEngine`] over its corpus — `Send + Sync`) and a per-thread
//! mutable half (the [`QueryContext`]). [`run_batch`] exploits that
//! split: worker threads share one engine by reference, each owns one
//! warm context, and they **steal work** from a single atomic cursor
//! over the query slice — no queue, no channel, no lock on the query
//! path. A thread that draws expensive queries simply claims fewer of
//! them; idle threads drain the remainder.
//!
//! Results come back in input order regardless of which thread answered
//! which query, so `run_batch(.., 1)` and `run_batch(.., N)` are
//! byte-identical (asserted by the tests here and the workspace's
//! concurrent differential test).

use std::sync::atomic::{AtomicUsize, Ordering};

use xks_index::Query;

use crate::engine::{AlgorithmKind, SearchEngine, SearchResult};

/// How a batch run distributed its work (returned by
/// [`run_batch_stats`]).
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Worker threads actually spawned.
    pub threads: usize,
    /// Queries answered by each worker (sums to the batch size).
    pub per_thread: Vec<usize>,
}

/// Runs every query through `engine` with `kind`, fanned out over
/// `threads` worker threads, returning results **in input order**.
///
/// `threads == 0` is treated as 1; `threads == 1` runs inline on the
/// calling thread (no spawn). The engine is borrowed, not cloned — all
/// workers share its corpus, caches, and buffer pool.
#[must_use]
pub fn run_batch(
    engine: &SearchEngine,
    queries: &[Query],
    kind: AlgorithmKind,
    threads: usize,
) -> Vec<SearchResult> {
    run_batch_stats(engine, queries, kind, threads).0
}

/// Like [`run_batch`] but also reporting how many queries each worker
/// claimed — the observability hook the `hotpath_mt` bench and the CLI
/// use.
#[must_use]
pub fn run_batch_stats(
    engine: &SearchEngine,
    queries: &[Query],
    kind: AlgorithmKind,
    threads: usize,
) -> (Vec<SearchResult>, BatchStats) {
    let threads = threads.max(1).min(queries.len().max(1));
    if threads == 1 {
        // Contexts come from the engine's warm pool (and go back), so
        // repeated batches don't re-grow their buffers.
        let mut ctx = engine.checkout_context();
        let results = queries
            .iter()
            .map(|q| engine.search_with(q, kind, &mut ctx))
            .collect();
        engine.checkin_context(ctx);
        return (
            results,
            BatchStats {
                threads: 1,
                per_thread: vec![queries.len()],
            },
        );
    }

    // Work-stealing cursor: each worker claims the next unanswered
    // query index. Workers collect (index, result) pairs locally, so
    // the only shared write is the cursor itself.
    let cursor = AtomicUsize::new(0);
    let mut collected: Vec<Vec<(usize, SearchResult)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut ctx = engine.checkout_context();
                let mut mine = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(query) = queries.get(i) else { break };
                    mine.push((i, engine.search_with(query, kind, &mut ctx)));
                }
                engine.checkin_context(ctx);
                mine
            }));
        }
        for handle in handles {
            collected.push(handle.join().expect("executor worker panicked"));
        }
    });

    let per_thread: Vec<usize> = collected.iter().map(Vec::len).collect();
    let mut results: Vec<Option<SearchResult>> = (0..queries.len()).map(|_| None).collect();
    for (i, result) in collected.into_iter().flatten() {
        results[i] = Some(result);
    }
    let results = results
        .into_iter()
        .map(|r| r.expect("every query index claimed exactly once"))
        .collect();
    (
        results,
        BatchStats {
            threads,
            per_thread,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MemoryCorpus;
    use std::sync::Arc;
    use xks_store::shred;
    use xks_xmltree::fixtures::{publications, PAPER_QUERIES};

    fn queries() -> Vec<Query> {
        // Repeat the paper queries so the batch is bigger than the
        // thread count and the cursor actually strides.
        PAPER_QUERIES
            .iter()
            .cycle()
            .take(24)
            .map(|s| Query::parse(s).unwrap())
            .collect()
    }

    #[test]
    fn concurrent_batch_matches_sequential() {
        let engine = SearchEngine::from_owned_source(MemoryCorpus::new(shred(&publications())));
        let queries = queries();
        let sequential = run_batch(&engine, &queries, AlgorithmKind::ValidRtf, 1);
        for threads in [2, 4, 8] {
            let concurrent = run_batch(&engine, &queries, AlgorithmKind::ValidRtf, threads);
            assert_eq!(sequential.len(), concurrent.len());
            for (s, c) in sequential.iter().zip(&concurrent) {
                assert_eq!(s.fragments, c.fragments, "{threads} threads");
            }
        }
    }

    #[test]
    fn stats_account_for_every_query() {
        let engine = SearchEngine::from_owned_source(MemoryCorpus::new(shred(&publications())));
        let queries = queries();
        let (results, stats) = run_batch_stats(&engine, &queries, AlgorithmKind::MaxMatchRtf, 3);
        assert_eq!(results.len(), queries.len());
        assert_eq!(stats.threads, 3);
        assert_eq!(stats.per_thread.iter().sum::<usize>(), queries.len());
    }

    #[test]
    fn degenerate_batches() {
        let engine = SearchEngine::new(publications());
        assert!(run_batch(&engine, &[], AlgorithmKind::ValidRtf, 4).is_empty());
        let one = vec![Query::parse(PAPER_QUERIES[2]).unwrap()];
        // 0 threads clamps to 1; more threads than queries clamps down.
        let a = run_batch(&engine, &one, AlgorithmKind::ValidRtf, 0);
        let b = run_batch(&engine, &one, AlgorithmKind::ValidRtf, 16);
        assert_eq!(a[0].fragments, b[0].fragments);
        assert_eq!(a[0].fragments.len(), 1);
    }

    #[test]
    fn engines_over_one_shared_source_run_batches_concurrently() {
        let corpus: Arc<dyn crate::source::CorpusSource> =
            Arc::new(MemoryCorpus::new(shred(&publications())));
        let engine = SearchEngine::from_source(corpus);
        let queries = queries();
        let (results, _) = run_batch_stats(&engine, &queries, AlgorithmKind::ValidRtf, 4);
        assert_eq!(results.len(), queries.len());
    }
}
