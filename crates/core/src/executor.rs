//! Concurrent request executor: many [`SearchRequest`]s, one shared
//! engine.
//!
//! The read path splits into a shared immutable half (the
//! [`SearchEngine`] over its corpus — `Send + Sync`) and a per-thread
//! mutable half (the `QueryContext`). [`run_batch`] exploits that
//! split: worker threads share one engine by reference, each owns one
//! warm context, and they **steal work** from a single atomic cursor
//! over the request slice — no queue, no channel, no lock on the query
//! path. A thread that draws expensive requests simply claims fewer of
//! them; idle threads drain the remainder.
//!
//! Each request is answered independently through
//! [`SearchEngine::execute_with`], so one failing request (a backend
//! I/O error, say) yields one `Err` slot — the rest of the batch still
//! completes. Results come back in input order regardless of which
//! thread answered which request, so `run_batch(.., 1)` and
//! `run_batch(.., N)` are byte-identical (asserted by the tests here
//! and the workspace's concurrent differential test).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::engine::SearchEngine;
use crate::request::{SearchError, SearchRequest, SearchResponse};

/// Global-registry handles for batch accounting, resolved once per
/// process. Per-worker draw counts feed a histogram, so the registry
/// snapshot shows how evenly the work-stealing cursor spread a
/// workload (a wide distribution means a few workers drew all the
/// expensive requests).
struct ExecutorMetrics {
    batches: xks_obs::Counter,
    requests: xks_obs::Counter,
    threads: xks_obs::Gauge,
    worker_draws: xks_obs::Histogram,
}

impl ExecutorMetrics {
    fn get() -> &'static ExecutorMetrics {
        static CELL: OnceLock<ExecutorMetrics> = OnceLock::new();
        CELL.get_or_init(|| {
            let registry = xks_obs::global();
            ExecutorMetrics {
                batches: registry.counter("executor.batches"),
                requests: registry.counter("executor.requests"),
                threads: registry.gauge("executor.last_batch_threads"),
                worker_draws: registry.histogram("executor.worker_draws"),
            }
        })
    }

    fn observe(stats: &BatchStats) {
        let metrics = Self::get();
        metrics.batches.inc();
        metrics
            .requests
            .add(stats.per_thread.iter().map(|&n| n as u64).sum());
        metrics.threads.set(stats.threads as u64);
        for &drawn in &stats.per_thread {
            metrics.worker_draws.record(drawn as u64);
        }
    }
}

/// How a batch run distributed its work (returned by
/// [`run_batch_stats`]).
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Worker threads actually spawned.
    pub threads: usize,
    /// Requests answered by each worker (sums to the batch size).
    pub per_thread: Vec<usize>,
}

/// One request's outcome within a batch.
pub type BatchResult = Result<SearchResponse, SearchError>;

/// Executes every request through `engine`, fanned out over `threads`
/// worker threads, returning responses **in input order**.
///
/// `threads == 0` is treated as 1; `threads == 1` runs inline on the
/// calling thread (no spawn). The engine is borrowed, not cloned — all
/// workers share its corpus, caches, and buffer pool.
#[must_use]
pub fn run_batch(
    engine: &SearchEngine,
    requests: &[SearchRequest],
    threads: usize,
) -> Vec<BatchResult> {
    run_batch_stats(engine, requests, threads).0
}

/// Like [`run_batch`] but also reporting how many requests each worker
/// claimed — the observability hook the `hotpath_mt` bench and the CLI
/// use.
#[must_use]
pub fn run_batch_stats(
    engine: &SearchEngine,
    requests: &[SearchRequest],
    threads: usize,
) -> (Vec<BatchResult>, BatchStats) {
    let threads = threads.max(1).min(requests.len().max(1));
    if threads == 1 {
        // Contexts come from the engine's warm pool (and go back), so
        // repeated batches don't re-grow their buffers.
        let mut ctx = engine.checkout_context();
        let results = requests
            .iter()
            .map(|r| engine.execute_with(r, &mut ctx))
            .collect();
        engine.checkin_context(ctx);
        let stats = BatchStats {
            threads: 1,
            per_thread: vec![requests.len()],
        };
        ExecutorMetrics::observe(&stats);
        return (results, stats);
    }

    // Work-stealing cursor: each worker claims the next unanswered
    // request index. Workers collect (index, result) pairs locally, so
    // the only shared write is the cursor itself.
    let cursor = AtomicUsize::new(0);
    let mut collected: Vec<Vec<(usize, BatchResult)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            handles.push(scope.spawn(move || {
                let mut ctx = engine.checkout_context();
                let mut mine = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(request) = requests.get(i) else {
                        break;
                    };
                    mine.push((i, engine.execute_with(request, &mut ctx)));
                }
                engine.checkin_context(ctx);
                mine
            }));
        }
        for handle in handles {
            collected.push(handle.join().expect("executor worker panicked"));
        }
    });

    let per_thread: Vec<usize> = collected.iter().map(Vec::len).collect();
    let mut results: Vec<Option<BatchResult>> = (0..requests.len()).map(|_| None).collect();
    for (i, result) in collected.into_iter().flatten() {
        results[i] = Some(result);
    }
    let results = results
        .into_iter()
        .map(|r| r.expect("every request index claimed exactly once"))
        .collect();
    let stats = BatchStats {
        threads,
        per_thread,
    };
    ExecutorMetrics::observe(&stats);
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AlgorithmKind;
    use crate::source::MemoryCorpus;
    use std::sync::Arc;
    use xks_store::shred;
    use xks_xmltree::fixtures::{publications, PAPER_QUERIES};

    fn requests() -> Vec<SearchRequest> {
        // Repeat the paper queries so the batch is bigger than the
        // thread count and the cursor actually strides.
        PAPER_QUERIES
            .iter()
            .cycle()
            .take(24)
            .map(|s| SearchRequest::parse(s).unwrap())
            .collect()
    }

    fn fragments(result: &BatchResult) -> Vec<crate::Fragment> {
        result
            .as_ref()
            .expect("request succeeds")
            .fragments()
            .cloned()
            .collect()
    }

    #[test]
    fn concurrent_batch_matches_sequential() {
        let engine = SearchEngine::from_owned_source(MemoryCorpus::new(shred(&publications())));
        let requests = requests();
        let sequential = run_batch(&engine, &requests, 1);
        for threads in [2, 4, 8] {
            let concurrent = run_batch(&engine, &requests, threads);
            assert_eq!(sequential.len(), concurrent.len());
            for (s, c) in sequential.iter().zip(&concurrent) {
                assert_eq!(fragments(s), fragments(c), "{threads} threads");
            }
        }
    }

    #[test]
    fn stats_account_for_every_request() {
        let engine = SearchEngine::from_owned_source(MemoryCorpus::new(shred(&publications())));
        let requests: Vec<SearchRequest> = requests()
            .into_iter()
            .map(|r| r.algorithm(AlgorithmKind::MaxMatchRtf))
            .collect();
        let (results, stats) = run_batch_stats(&engine, &requests, 3);
        assert_eq!(results.len(), requests.len());
        assert_eq!(stats.threads, 3);
        assert_eq!(stats.per_thread.iter().sum::<usize>(), requests.len());
    }

    #[test]
    fn degenerate_batches() {
        let engine = SearchEngine::new(publications());
        assert!(run_batch(&engine, &[], 4).is_empty());
        let one = vec![SearchRequest::parse(PAPER_QUERIES[2]).unwrap()];
        // 0 threads clamps to 1; more threads than requests clamps down.
        let a = run_batch(&engine, &one, 0);
        let b = run_batch(&engine, &one, 16);
        assert_eq!(fragments(&a[0]), fragments(&b[0]));
        assert_eq!(fragments(&a[0]).len(), 1);
    }

    #[test]
    fn per_request_knobs_apply_within_one_batch() {
        // Requests carry their own algorithm and shaping; a mixed batch
        // must honor each independently.
        let engine = SearchEngine::new(publications());
        let batch = vec![
            SearchRequest::parse("liu keyword").unwrap(),
            SearchRequest::parse("liu keyword").unwrap().top_k(1),
            SearchRequest::parse("liu keyword")
                .unwrap()
                .algorithm(AlgorithmKind::MaxMatchSlca),
        ];
        let results = run_batch(&engine, &batch, 2);
        assert_eq!(fragments(&results[0]).len(), 2);
        let capped = results[1].as_ref().unwrap();
        assert_eq!(capped.hits.len(), 1);
        assert!(capped.stats.truncated);
        assert_eq!(capped.stats.total_before_top_k, 2);
        assert_eq!(fragments(&results[2]).len(), 1);
    }

    #[test]
    fn engines_over_one_shared_source_run_batches_concurrently() {
        let corpus: Arc<dyn crate::source::CorpusSource> =
            Arc::new(MemoryCorpus::new(shred(&publications())));
        let engine = SearchEngine::from_source(corpus);
        let requests = requests();
        let (results, _) = run_batch_stats(&engine, &requests, 4);
        assert_eq!(results.len(), requests.len());
        assert!(results.iter().all(Result::is_ok));
    }
}
