//! # xks — XML keyword search with Relaxed Tightest Fragments
//!
//! Facade crate for the workspace reproducing *"Retrieving Meaningful
//! Relaxed Tightest Fragments for XML Keyword Search"* (EDBT 2009).
//! Re-exports every member crate under one roof; see the individual
//! crates for details:
//!
//! * [`xmltree`] — XML model, parser, Dewey codes, tokenization;
//! * [`store`] — relational-style shredding (label/element/value tables);
//! * [`index`] — inverted keyword index and query resolution;
//! * [`lca`] — SLCA and ELCA algorithms;
//! * [`core`] — RTFs, valid contributor, ValidRTF & MaxMatch, metrics,
//!   axioms (crate `validrtf`);
//! * [`persist`] — the paged binary on-disk index (`.xks` files,
//!   buffer-pool reads);
//! * [`datagen`] — DBLP-alike / XMark-alike corpora and workloads;
//! * [`obs`] — telemetry: the metrics registry, latency histograms,
//!   and the per-query stage tracer (crate `xks-obs`);
//! * [`serve`] — the resident HTTP query server behind `xks serve`
//!   (crate `xks-serve`).

#![deny(missing_docs)]

pub use validrtf as core;
pub use xks_datagen as datagen;
pub use xks_index as index;
pub use xks_lca as lca;
pub use xks_obs as obs;
pub use xks_persist as persist;
pub use xks_serve as serve;
pub use xks_store as store;
pub use xks_xmltree as xmltree;
