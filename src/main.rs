//! `xks` — command-line XML keyword search.
//!
//! ```text
//! xks search <file.xml> "<query>" ["<query>" ...] [--algo valid|maxmatch|slca] [--top-k N]
//!            [--format json|text] [--limit N] [--xml] [--rank] [--threads N]
//!            [--trace] [--trace-out <trace.json>]
//! xks search --index <file.xks|file.xksm> "<query>" ... [same flags] [--shard-threads N]
//! xks serve  --index <file.xks|file.xksm> [--addr H:P] [--workers N] [--queue-depth N] [--timeout-ms N]
//! xks bench  --index <file.xks|file.xksm> --queries <queries.txt> [--threads N] [--sweeps N] [--algo ...] [--format json|text]
//! xks compare <file.xml> "<query>" [--format json|text]
//! xks stats <file.xml> [--top N]
//! xks stats --index <file.xks|file.xksm> [--queries <queries.txt>] [--threads N] [--algo ...] [--shard-threads N]
//! xks shred <file.xml> <out.json>
//! xks build-index <file.xml> <out.xks> [--page-size N]
//! xks build-index <file.xml> <out.xksm> --shards N [--page-size N]
//! xks index-stats <file.xks|file.xksm> [--format json|text]
//! xks verify  --index <file.xks|file.xksm>
//! xks insert  --corpus <dir> <file.xml> [--root <label>]
//! xks delete  --corpus <dir> --doc <ordinal>
//! xks compact --corpus <dir> [--shards N]
//! ```
//!
//! Queries use the operator grammar: plain keywords, quoted
//! `"phrases"`, `-word` exclusions, and `label:word` filters (see
//! `docs/API.md`). All query commands route through the
//! request/response API (`SearchRequest` → `SearchEngine::execute`),
//! so backend failures surface as clean errors, never panics.
//!
//! `--index` accepts either a monolithic `.xks` index or a shard
//! manifest written by `build-index --shards N` — the file magic
//! decides, not the extension. Sharded corpora are searched with
//! scatter-gather (`--shard-threads` caps the per-query fan-out);
//! results are byte-identical either way.
//!
//! Mutable corpora (docs/DURABILITY.md): `insert`/`delete` append to a
//! WAL-backed corpus *directory* (created on first insert), `compact`
//! seals the accumulated delta into `.xks` shards, and `search
//! --corpus <dir>` / `stats --corpus <dir>` query the live corpus —
//! sealed base plus un-compacted delta — after crash recovery. `verify`
//! streams the CRC verification of any index and exits non-zero on the
//! first corrupt section.
//!
//! Observability (docs/OBSERVABILITY.md): `--trace` prints a per-stage
//! breakdown of each query, `--trace-out` writes the same spans as a
//! Chrome-trace-event JSON file, and `xks stats --index` dumps one
//! `xks-obs/1` snapshot of the process-wide metrics registry merged
//! with the index's cache counters.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use xks::core::algorithms::StageTimings;
use xks::core::engine::{AlgorithmKind, SearchEngine};
use xks::core::executor::run_batch_stats;
use xks::core::wire::{self, obj};
use xks::core::{RankWeights, SearchRequest, SearchResponse};
use xks::index::Query;
use xks::obs::{HistogramSnapshot, MetricSource, QueryTrace};
use xks::persist::{
    preregister_durability_metrics, IndexReader, IndexWriter, MutableCorpus, ShardedCorpus,
};
use xks::serve::{Server, ServerConfig};
use xks::store::json::{self, Value};
use xks::xmltree::XmlTree;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "search" => cmd_search(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "explain" => cmd_explain(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "shred" => cmd_shred(&args[1..]),
        "build-index" => cmd_build_index(&args[1..]),
        "index-stats" => cmd_index_stats(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        "insert" => cmd_insert(&args[1..]),
        "delete" => cmd_delete(&args[1..]),
        "compact" => cmd_compact(&args[1..]),
        "workload" => cmd_workload(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("xks: {msg}");
            ExitCode::from(1)
        }
    }
}

const USAGE: &str = "usage:
  xks search  <file.xml> \"<query>\" [\"<query>\" ...] [--algo valid|maxmatch|slca] [--top-k N] [--format json|text] [--limit N] [--xml] [--rank] [--threads N] [--trace] [--trace-out <trace.json>]
  xks search  --index <file.xks|file.xksm> \"<query>\" [\"<query>\" ...] [same flags, no --xml] [--shard-threads N]
  xks serve   --index <file.xks|file.xksm> | --corpus <dir> | <file.xml>  [--addr HOST:PORT] [--workers N] [--queue-depth N] [--timeout-ms N] [--drain-ms N] [--idle-ms N] [--max-body-bytes N] [--shard-threads N]
  xks explain \"<query>\" --index <file.xks|file.xksm> [--algo valid|maxmatch|slca] [--format json|text]
  xks explain <file.xml> \"<query>\" [same flags]
  xks explain \"<query>\" --corpus <dir> [same flags]
  xks bench   --index <file.xks|file.xksm> --queries <queries.txt> [--threads N] [--sweeps N] [--algo valid|maxmatch|slca] [--top-k N] [--format json|text] [--shard-threads N]
  xks bench   <file.xml> --queries <queries.txt> [same flags]
  xks compare <file.xml> \"<query>\" [--format json|text]
  xks stats   <file.xml> [--top N]
  xks stats   --index <file.xks|file.xksm> [--queries <queries.txt>] [--threads N] [--algo valid|maxmatch|slca] [--top-k N] [--shard-threads N]
  xks shred   <file.xml> <out.json>
  xks build-index <file.xml> <out.xks> [--page-size N]
  xks build-index <file.xml> <out.xksm> --shards N [--page-size N]
  xks index-stats <file.xks|file.xksm> [--format json|text]
  xks verify  --index <file.xks|file.xksm>
  xks insert  --corpus <dir> <file.xml> [--root <label>]
  xks delete  --corpus <dir> --doc <ordinal>
  xks compact --corpus <dir> [--shards N]
  xks search  --corpus <dir> \"<query>\" [\"<query>\" ...] [same flags, no --xml]
  xks stats   --corpus <dir> [--queries <queries.txt>] [same flags as stats --index]
  xks workload list [--format json|text]
  xks workload show <cell> [--format json|text]
  xks workload generate <cell>|all [--out <dir>]

query grammar: plain keywords, \"quoted phrases\", -excluded, label:word
(docs/API.md documents the grammar, the JSON output schemas, and the
workload-matrix cells behind xks workload are named
s<scale>-<shape>-<skew>-<tenancy>, see docs/WORKLOADS.md;
sharded index surface; --index sniffs the file magic, so a shard
manifest from build-index --shards works everywhere a .xks does;
docs/OBSERVABILITY.md covers --trace and the stats --index snapshot;
docs/DURABILITY.md covers the WAL-backed mutable corpus directories
behind insert/delete/compact and their crash-recovery guarantees;
docs/SERVER.md covers the xks serve HTTP endpoints, admission control,
deadlines, and graceful shutdown)";

fn load_tree(path: &str) -> Result<XmlTree, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    xks::xmltree::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// True when the file at `path` starts with the shard-manifest magic
/// (`XKSM`) — the format sniff behind every `--index` flag.
fn is_shard_manifest(path: &str) -> Result<bool, String> {
    use std::io::Read as _;
    let mut magic = [0u8; 4];
    let mut file =
        std::fs::File::open(path).map_err(|e| format!("cannot open index {path}: {e}"))?;
    match file.read_exact(&mut magic) {
        Ok(()) => Ok(magic == xks::persist::shard::MANIFEST_MAGIC),
        Err(_) => Ok(false), // shorter than any magic; let the opener diagnose
    }
}

/// Opens `--index` as whatever it is: a shard manifest becomes a
/// scatter-gather engine over a [`ShardedCorpus`] (fan-out from
/// `--shard-threads`, default `min(shards, cores)`), a monolithic
/// `.xks` becomes the familiar single-reader engine.
fn open_index_engine(path: &str, shard_threads: Option<usize>) -> Result<SearchEngine, String> {
    if is_shard_manifest(path)? {
        let corpus = ShardedCorpus::open(Path::new(path))
            .map_err(|e| format!("cannot open sharded index {path}: {e}"))?;
        let mut engine = SearchEngine::from_shard_set(corpus.shard_set());
        if let Some(threads) = shard_threads {
            engine = engine.with_scatter_threads(threads);
        }
        Ok(engine)
    } else {
        let reader = IndexReader::open(Path::new(path))
            .map_err(|e| format!("cannot open index {path}: {e}"))?;
        Ok(SearchEngine::from_owned_source(reader))
    }
}

/// Which output shape the query commands emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

impl Format {
    fn from_flags(flags: &Flags) -> Result<Self, String> {
        match flags.get_str("format") {
            None | Some("text") => Ok(Format::Text),
            Some("json") => Ok(Format::Json),
            Some(other) => Err(format!("unknown --format {other:?} (json|text)")),
        }
    }
}

fn parse_algo(flags: &Flags) -> Result<AlgorithmKind, String> {
    let name = flags.get_str("algo").unwrap_or("valid");
    wire::parse_algorithm(name).ok_or_else(|| format!("unknown --algo {name:?}"))
}

/// Builds one request per query string, applying the shared flags.
fn build_requests(
    texts: &[String],
    algo: AlgorithmKind,
    top_k: Option<usize>,
    ranked: bool,
    traced: bool,
) -> Result<Vec<SearchRequest>, String> {
    texts
        .iter()
        .map(|text| {
            let mut request = SearchRequest::parse(text)
                .map_err(|e| format!("{e} (in query {text:?})"))?
                .algorithm(algo)
                .trace(traced);
            if let Some(k) = top_k {
                request = request.top_k(k);
            }
            if ranked {
                request = request.weights(RankWeights::default());
            }
            Ok(request)
        })
        .collect()
}

/// Reads a bench/stats query workload file: one query per line, blank
/// lines and `#` comments skipped.
fn read_query_file(path: &str) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect())
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let algo = parse_algo(&flags)?;
    let format = Format::from_flags(&flags)?;
    let limit = flags.get_usize("limit")?.unwrap_or(usize::MAX);
    let top_k = flags.get_usize("top-k")?;
    let threads = flags.get_usize("threads")?.unwrap_or(1);
    let as_xml = flags.has("xml");
    let ranked = flags.has("rank");
    let trace_out = flags.get_str("trace-out").map(str::to_owned);
    let traced = flags.has("trace") || trace_out.is_some();
    let timeout = flags
        .get_usize("timeout-ms")?
        .map(|ms| Duration::from_millis(ms as u64));

    // One or more query strings; several queries fan out over the
    // executor's worker threads (`--threads N`).
    let (engine, query_args) = if let Some(dir) = flags.get_str("corpus") {
        let queries = positional.as_slice();
        if queries.is_empty() {
            return Err(format!("search --corpus needs <query>\n{USAGE}"));
        }
        if as_xml {
            return Err(
                "--xml needs the original document; mutable corpora keep only \
                 keywords (drop --xml)"
                    .to_owned(),
            );
        }
        let corpus = MutableCorpus::open(Path::new(dir))
            .map_err(|e| format!("cannot open corpus {dir}: {e}"))?;
        (SearchEngine::from_source(corpus.source() as _), queries)
    } else {
        match flags.get_str("index") {
            Some(index_file) => {
                let queries = positional.as_slice();
                if queries.is_empty() {
                    return Err(format!("search --index needs <query>\n{USAGE}"));
                }
                if as_xml {
                    return Err(
                        "--xml needs the original document; shredded indexes keep only \
                     keywords (drop --xml or search the .xml file)"
                            .to_owned(),
                    );
                }
                let engine = open_index_engine(index_file, flags.get_usize("shard-threads")?)?;
                (engine, queries)
            }
            None => {
                let [file, queries @ ..] = positional.as_slice() else {
                    return Err(format!("search needs <file.xml> and <query>\n{USAGE}"));
                };
                if queries.is_empty() {
                    return Err(format!("search needs <file.xml> and <query>\n{USAGE}"));
                }
                (SearchEngine::new(load_tree(file)?), queries)
            }
        }
    };
    let mut requests = build_requests(query_args, algo, top_k, ranked, traced)?;
    if let Some(budget) = timeout {
        // Each query gets its own budget, measured from here — queueing
        // behind other queries in the batch counts against it, matching
        // the server's admission-time deadline semantics.
        requests = requests.into_iter().map(|r| r.timeout(budget)).collect();
    }
    if trace_out.is_some() && requests.len() != 1 {
        return Err(format!(
            "--trace-out records exactly one query per file (got {})",
            requests.len()
        ));
    }
    let (results, _) = run_batch_stats(&engine, &requests, threads);

    let mut json_results: Vec<Value> = Vec::new();
    let many = requests.len() > 1;
    for (request, result) in requests.iter().zip(results) {
        let response = result.map_err(|e| e.to_string())?;
        if let (Some(path), Some(trace)) = (trace_out.as_deref(), response.trace.as_ref()) {
            std::fs::write(path, trace.to_chrome_json(&request.spec().to_string()))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote Chrome trace to {path} (chrome://tracing, Perfetto)");
        }
        match format {
            Format::Json => {
                json_results.push(wire::response_json(&engine, request, &response, limit))
            }
            Format::Text => {
                print_text_response(&engine, request, &response, limit, as_xml, many);
                if let Some(trace) = &response.trace {
                    print_text_trace(trace);
                }
            }
        }
    }
    if format == Format::Json {
        println!(
            "{}",
            json::to_string(&Value::Obj(obj([("results", Value::Arr(json_results),)])))
        );
    }
    Ok(())
}

/// `xks serve`: a resident HTTP query server over any backend — a
/// monolithic `.xks`, a shard manifest, a mutable corpus directory, or
/// a parsed XML file. The engine (and its warm `QueryContext` pool) is
/// built once and shared by every worker; `POST /search` responses are
/// byte-identical to `xks search --format json` results by
/// construction (both render through `xks::core::wire`). Admission
/// control, deadlines, and graceful shutdown are documented in
/// docs/SERVER.md.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let addr = match (flags.get_str("addr"), flags.get_usize("port")?) {
        (Some(_), Some(_)) => {
            return Err("--addr and --port are mutually exclusive (addr carries the port)".into())
        }
        (Some(addr), None) => addr.to_owned(),
        (None, Some(port)) => format!("127.0.0.1:{port}"),
        (None, None) => "127.0.0.1:7878".to_owned(),
    };
    let mut config = ServerConfig {
        addr,
        ..ServerConfig::default()
    };
    if let Some(n) = flags.get_usize("workers")? {
        config.workers = n.max(1);
    }
    if let Some(n) = flags.get_usize("queue-depth")? {
        config.queue_depth = n;
    }
    if let Some(ms) = flags.get_usize("timeout-ms")? {
        config.request_timeout = Some(Duration::from_millis(ms as u64));
    }
    if let Some(ms) = flags.get_usize("drain-ms")? {
        config.drain_timeout = Duration::from_millis(ms as u64);
    }
    if let Some(ms) = flags.get_usize("idle-ms")? {
        config.limits.idle_timeout = Duration::from_millis(ms as u64);
    }
    if let Some(n) = flags.get_usize("max-body-bytes")? {
        config.limits.max_body_bytes = n;
    }
    config.watch_signals = true;

    // The full metric catalog (durability + server) shows up in /stats
    // as explicit zeros even before any traffic.
    preregister_durability_metrics();
    type Collector = (String, Arc<dyn MetricSource + Send + Sync>);
    let reject_positional = || -> Result<(), String> {
        if let [extra, ..] = positional.as_slice() {
            return Err(format!(
                "serve --index/--corpus takes no positional file (got {extra:?})\n{USAGE}"
            ));
        }
        Ok(())
    };
    let (engine, collector): (SearchEngine, Option<Collector>) =
        if let Some(dir) = flags.get_str("corpus") {
            reject_positional()?;
            let corpus = MutableCorpus::open(Path::new(dir))
                .map_err(|e| format!("cannot open corpus {dir}: {e}"))?;
            let engine = SearchEngine::from_source(corpus.source() as _);
            (engine, Some(("corpus.".to_owned(), Arc::new(corpus) as _)))
        } else if let Some(index_file) = flags.get_str("index") {
            reject_positional()?;
            if is_shard_manifest(index_file)? {
                let corpus = ShardedCorpus::open(Path::new(index_file))
                    .map_err(|e| format!("cannot open sharded index {index_file}: {e}"))?;
                let mut engine = SearchEngine::from_shard_set(corpus.shard_set());
                if let Some(threads) = flags.get_usize("shard-threads")? {
                    engine = engine.with_scatter_threads(threads);
                }
                (engine, Some(("index.".to_owned(), Arc::new(corpus) as _)))
            } else {
                let reader = Arc::new(
                    IndexReader::open(Path::new(index_file))
                        .map_err(|e| format!("cannot open index {index_file}: {e}"))?,
                );
                let engine = SearchEngine::from_source(Arc::clone(&reader) as _);
                (engine, Some(("index.".to_owned(), reader as _)))
            }
        } else {
            let [file] = positional.as_slice() else {
                return Err(format!(
                    "serve needs --index <file>, --corpus <dir>, or <file.xml>\n{USAGE}"
                ));
            };
            (SearchEngine::new(load_tree(file)?), None)
        };

    let addr = config.addr.clone();
    let mut server =
        Server::bind(engine, config).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    if let Some((prefix, source)) = collector {
        server = server.with_collector(prefix, source);
    }
    // The parseable startup line (tests and scripts read the bound
    // address from it — port 0 resolves to a real port here).
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!("endpoints: POST /search  GET /stats  GET /healthz  (SIGINT/SIGTERM drains)");
    let report = server.run().map_err(|e| format!("server failed: {e}"))?;
    eprintln!(
        "server drained: {} response(s) served, {} shed (429), {} deadline timeout(s), drain {}",
        report.served,
        report.shed,
        report.timeouts,
        if report.drained_cleanly {
            "clean"
        } else {
            "timed out"
        },
    );
    Ok(())
}

/// `xks explain`: show the query plan — rarest-first term order,
/// per-term selectivity, chosen intersection strategy, shard skips —
/// without executing the query.
fn cmd_explain(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let algo = parse_algo(&flags)?;
    let format = Format::from_flags(&flags)?;

    let (engine, query_text) = if let Some(dir) = flags.get_str("corpus") {
        let [query] = positional.as_slice() else {
            return Err(format!("explain --corpus needs one <query>\n{USAGE}"));
        };
        let corpus = MutableCorpus::open(Path::new(dir))
            .map_err(|e| format!("cannot open corpus {dir}: {e}"))?;
        (SearchEngine::from_source(corpus.source() as _), query)
    } else if let Some(index_file) = flags.get_str("index") {
        let [query] = positional.as_slice() else {
            return Err(format!("explain --index needs one <query>\n{USAGE}"));
        };
        let engine = open_index_engine(index_file, flags.get_usize("shard-threads")?)?;
        (engine, query)
    } else {
        let [file, query] = positional.as_slice() else {
            return Err(format!("explain needs <file.xml> and <query>\n{USAGE}"));
        };
        (SearchEngine::new(load_tree(file)?), query)
    };

    let request = SearchRequest::parse(query_text)
        .map_err(|e| format!("{e} (in query {query_text:?})"))?
        .algorithm(algo);
    let report = engine.explain(&request).map_err(|e| e.to_string())?;

    match format {
        Format::Json => {
            let terms: Vec<Value> = report
                .terms
                .iter()
                .map(|t| {
                    Value::Obj(obj([
                        ("keyword", Value::Str(t.keyword.clone())),
                        ("postings", Value::Num(t.postings)),
                        ("doc_freq", t.doc_freq.map_or(Value::Null, Value::Num)),
                        ("sealed", Value::Bool(t.sealed)),
                        ("shards_skipped", Value::Num(u64::from(t.shards_skipped))),
                    ]))
                })
                .collect();
            println!(
                "{}",
                json::to_string(&Value::Obj(obj([
                    ("query", Value::Str(request.spec().to_string())),
                    (
                        "algorithm",
                        Value::Str(wire::algorithm_name(algo).to_owned())
                    ),
                    ("strategy", Value::Str(report.strategy.as_str().to_owned())),
                    ("shards", Value::Num(u64::from(report.shards))),
                    ("terms", Value::Arr(terms)),
                ])))
            );
        }
        Format::Text => {
            println!(
                "plan for {:?} — strategy {}, {} term(s){}",
                request.spec().to_string(),
                report.strategy.as_str(),
                report.terms.len(),
                if report.shards > 0 {
                    format!(", {} shard(s)", report.shards)
                } else {
                    String::new()
                }
            );
            if let Some(driver) = report.terms.first() {
                if report.strategy == xks::core::PlanStrategy::Gallop {
                    println!(
                        "driver: {:?} (rarest term anchors the gallop)",
                        driver.keyword
                    );
                }
            }
            for (i, t) in report.terms.iter().enumerate() {
                let df = t.doc_freq.map_or_else(|| "?".to_owned(), |d| d.to_string());
                let sealed = if t.sealed { "sealed" } else { "unsealed" };
                let skips = if report.shards > 0 {
                    format!("  skips {}/{} shard(s)", t.shards_skipped, report.shards)
                } else {
                    String::new()
                };
                println!(
                    "  {}. {:<20} postings={:<8} docs={:<8} {}{}",
                    i + 1,
                    t.keyword,
                    t.postings,
                    df,
                    sealed,
                    skips
                );
            }
            if report.strategy == xks::core::PlanStrategy::FullMerge {
                println!(
                    "note: full k-way merge (gallop needs ≥2 terms, sealed stats, and a \
                     {}× rarest-to-total skew)",
                    xks::core::plan::GALLOP_MIN_RATIO
                );
            }
        }
    }
    Ok(())
}

/// The text rendering of one response (the legacy human-readable form,
/// now with scores and truncation/parse reporting).
fn print_text_response(
    engine: &SearchEngine,
    request: &SearchRequest,
    response: &SearchResponse,
    limit: usize,
    as_xml: bool,
    show_header: bool,
) {
    if show_header {
        println!("## query: {}", request.spec());
    }
    let stats = &response.stats;
    eprintln!(
        "{} hit(s) in {:?} ({:?} after keyword retrieval)",
        response.hits.len(),
        response.timings.total(),
        response.timings.algorithm_time()
    );
    if stats.truncated {
        eprintln!(
            "truncated to {} of {} fragment(s)",
            response.hits.len(),
            stats.total_before_top_k
        );
    }
    if stats.filtered_out > 0 {
        eprintln!(
            "{} fragment(s) removed by query operators",
            stats.filtered_out
        );
    }
    for (raw, normalized) in &stats.normalized_terms {
        eprintln!("note: term {raw:?} normalized to {normalized:?}");
    }
    for raw in &stats.dropped_terms {
        eprintln!("note: duplicate term {raw:?} dropped");
    }
    for hit in response.hits.iter().take(limit) {
        match hit.score {
            Some(score) => println!("# anchor {} (score {score:.3})", hit.fragment.anchor),
            None => println!("# anchor {}", hit.fragment.anchor),
        }
        match engine.corpus() {
            Some(source) => print!("{}", hit.fragment.render_source(source)),
            None if as_xml => println!("{}", hit.fragment.to_xml(engine.tree())),
            None => print!("{}", hit.fragment.render(engine.tree())),
        }
    }
    if response.hits.len() > limit {
        eprintln!("… {} more (raise --limit)", response.hits.len() - limit);
    }
}

/// The `--trace` text rendering: one line per recorded span, offsets
/// and durations in microseconds from the trace origin. Goes to stderr
/// with the other diagnostics so fragment output stays clean.
fn print_text_trace(trace: &QueryTrace) {
    eprintln!("trace ({} span(s)):", trace.spans().len());
    for span in trace.spans() {
        eprintln!(
            "  {:<16} @{:>12}  {:>12}",
            span.stage.as_str(),
            format_us(span.start_ns),
            format_us(span.dur_ns)
        );
    }
    if trace.dropped() > 0 {
        eprintln!("  … {} span(s) dropped (buffer full)", trace.dropped());
    }
}

/// Nanoseconds as a `µs` literal with three fractional digits.
fn format_us(ns: u64) -> String {
    format!("{}.{:03}µs", ns / 1_000, ns % 1_000)
}

/// Batch mode: run a whole query file through the concurrent executor
/// against one shared engine and report aggregate throughput.
fn cmd_bench(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let algo = parse_algo(&flags)?;
    let format = Format::from_flags(&flags)?;
    let top_k = flags.get_usize("top-k")?;
    let threads = flags.get_usize("threads")?.unwrap_or(1).max(1);
    let sweeps = flags.get_usize("sweeps")?.unwrap_or(3).max(1);
    let Some(queries_file) = flags.get_str("queries") else {
        return Err(format!("bench needs --queries <file>\n{USAGE}"));
    };

    let engine = match flags.get_str("index") {
        Some(index_file) => {
            if let [extra, ..] = positional.as_slice() {
                return Err(format!(
                    "bench --index takes no positional file (got {extra:?}); \
                     drop --index to bench an XML document\n{USAGE}"
                ));
            }
            open_index_engine(index_file, flags.get_usize("shard-threads")?)?
        }
        None => {
            let [file] = positional.as_slice() else {
                return Err(format!("bench needs <file.xml> or --index\n{USAGE}"));
            };
            SearchEngine::new(load_tree(file)?)
        }
    };

    let lines = read_query_file(queries_file)?;
    let requests = build_requests(&lines, algo, top_k, false, false)?;
    if requests.is_empty() {
        return Err(format!("{queries_file} holds no queries"));
    }

    // Untimed warm-up sweep, then timed sweeps. Any backend failure
    // aborts the bench with the typed error. Timed sweeps also feed
    // each query's engine-side timings into a latency histogram and a
    // per-stage aggregate, so throughput comes with a breakdown.
    let (warmup, _) = run_batch_stats(&engine, &requests, threads);
    for result in warmup {
        result.map_err(|e| e.to_string())?;
    }
    let start = std::time::Instant::now();
    let mut fragments = 0usize;
    let mut last_stats = None;
    let mut stages = StageTimings::default();
    let latency = xks::obs::Histogram::new();
    for _ in 0..sweeps {
        let (results, stats) = run_batch_stats(&engine, &requests, threads);
        for result in results {
            let response = result.map_err(|e| e.to_string())?;
            fragments += response.hits.len();
            let t = &response.timings;
            stages.get_keyword_nodes += t.get_keyword_nodes;
            stages.get_lca += t.get_lca;
            stages.get_rtf += t.get_rtf;
            stages.prune_rtf += t.prune_rtf;
            stages.post_process += t.post_process;
            latency.record_duration(t.total());
        }
        last_stats = Some(stats);
    }
    let elapsed = start.elapsed();
    let lat = latency.snapshot();
    let total = requests.len() * sweeps;
    let qps = total as f64 / elapsed.as_secs_f64();
    // Report the worker count the executor actually ran (it clamps the
    // request to the batch size), not the requested --threads.
    let ran = last_stats.as_ref().map_or(threads, |s| s.threads);
    match format {
        Format::Json => {
            let mut fields = obj([
                ("bench", Value::Str("batch".to_owned())),
                (
                    "algorithm",
                    Value::Str(wire::algorithm_name(algo).to_owned()),
                ),
                ("queries", Value::Num(requests.len() as u64)),
                ("sweeps", Value::Num(sweeps as u64)),
                ("threads", Value::Num(ran as u64)),
                ("total_queries", Value::Num(total as u64)),
                ("elapsed_us", Value::Num(elapsed.as_micros() as u64)),
                ("queries_per_sec", Value::Float(qps)),
                ("fragments", Value::Num(fragments as u64)),
                ("stages_us", wire::stage_timings_json(&stages)),
                ("latency_ns", histogram_json(&lat)),
            ]);
            if let Some(stats) = &last_stats {
                fields.insert(
                    "last_sweep_work_split".to_owned(),
                    Value::Arr(
                        stats
                            .per_thread
                            .iter()
                            .map(|&n| Value::Num(n as u64))
                            .collect(),
                    ),
                );
            }
            println!("{}", json::to_string(&Value::Obj(fields)));
        }
        Format::Text => {
            println!(
                "{total} queries ({} x {sweeps} sweeps), {ran} thread(s): \
                 {qps:.0} queries/sec ({elapsed:?} total, {fragments} fragments)",
                requests.len()
            );
            if let Some(stats) = last_stats {
                println!("last sweep work split: {:?}", stats.per_thread);
            }
            println!(
                "stage totals: get_keyword_nodes {:?} | get_lca {:?} | get_rtf {:?} | \
                 prune_rtf {:?} | post_process {:?}",
                stages.get_keyword_nodes,
                stages.get_lca,
                stages.get_rtf,
                stages.prune_rtf,
                stages.post_process
            );
            println!(
                "per-query latency: p50 {}  p90 {}  p99 {}  max {}  ({} samples)",
                format_us(lat.p50()),
                format_us(lat.p90()),
                format_us(lat.p99()),
                format_us(lat.max),
                lat.count
            );
        }
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let format = Format::from_flags(&flags)?;
    let [file, keywords] = positional.as_slice() else {
        return Err(format!("compare needs <file.xml> and <query>\n{USAGE}"));
    };
    let tree = load_tree(file)?;
    let engine = SearchEngine::new(tree);
    let query = Query::parse(keywords).map_err(|e| format!("bad query: {e}"))?;
    let cmp = engine.compare(&query).map_err(|e| e.to_string())?;
    match format {
        Format::Json => {
            let value = Value::Obj(obj([
                ("query", Value::Str(query.to_string())),
                ("rtf_count", Value::Num(cmp.rtf_count as u64)),
                (
                    "valid_rtf_us",
                    Value::Num(cmp.valid_rtf_time.as_micros() as u64),
                ),
                (
                    "max_match_us",
                    Value::Num(cmp.max_match_time.as_micros() as u64),
                ),
                ("cfr", Value::Float(cmp.effectiveness.cfr)),
                ("apr", Value::Float(cmp.effectiveness.apr)),
                ("apr_prime", Value::Float(cmp.effectiveness.apr_prime)),
                ("max_apr", Value::Float(cmp.effectiveness.max_apr)),
            ]));
            println!("{}", json::to_string(&value));
        }
        Format::Text => {
            println!("RTFs      : {}", cmp.rtf_count);
            println!("ValidRTF  : {:?}", cmp.valid_rtf_time);
            println!("MaxMatch  : {:?}", cmp.max_match_time);
            println!("CFR       : {:.3}", cmp.effectiveness.cfr);
            println!("APR       : {:.3}", cmp.effectiveness.apr);
            println!("APR'      : {:.3}", cmp.effectiveness.apr_prime);
            println!("Max APR   : {:.3}", cmp.effectiveness.max_apr);
        }
    }
    Ok(())
}

// -- JSON rendering -----------------------------------------------------
// The response/timings/trace renderers live in `xks::core::wire`,
// shared with the HTTP server so both surfaces emit identical bytes.

/// A histogram snapshot as JSON: summary statistics plus the non-empty
/// `[lo, hi, count]` buckets (mirrors the `xks-obs/1` histogram form).
fn histogram_json(hist: &HistogramSnapshot) -> Value {
    Value::Obj(obj([
        ("count", Value::Num(hist.count)),
        ("sum", Value::Num(hist.sum)),
        ("max", Value::Num(hist.max)),
        ("mean", Value::Num(hist.mean())),
        ("p50", Value::Num(hist.p50())),
        ("p90", Value::Num(hist.p90())),
        ("p99", Value::Num(hist.p99())),
        (
            "buckets",
            Value::Arr(
                hist.nonzero_buckets()
                    .map(|(lo, hi, n)| {
                        Value::Arr(vec![Value::Num(lo), Value::Num(hi), Value::Num(n)])
                    })
                    .collect(),
            ),
        ),
    ]))
}

/// An `xks-obs` snapshot as a JSON value (for embedding inside another
/// document; `xks stats --index` prints the canonical string form).
fn snapshot_json(snap: &xks::obs::Snapshot) -> Value {
    Value::Obj(obj([
        (
            "counters",
            Value::Obj(
                snap.counters()
                    .map(|(name, v)| (name.to_owned(), Value::Num(v)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Value::Obj(
                snap.gauges()
                    .map(|(name, v)| (name.to_owned(), Value::Num(v)))
                    .collect(),
            ),
        ),
        (
            "ratios",
            Value::Obj(
                snap.ratios()
                    .map(|(name, v)| (name.to_owned(), Value::Float(v)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Value::Obj(
                snap.histograms()
                    .map(|(name, h)| (name.to_owned(), histogram_json(h)))
                    .collect(),
            ),
        ),
    ]))
}

// -- remaining commands (unchanged surface) -----------------------------

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    if let Some(dir) = flags.get_str("corpus") {
        if let [extra, ..] = positional.as_slice() {
            return Err(format!(
                "stats --corpus takes no positional file (got {extra:?})\n{USAGE}"
            ));
        }
        return cmd_stats_corpus(dir, &flags);
    }
    if let Some(index_file) = flags.get_str("index") {
        if let [extra, ..] = positional.as_slice() {
            return Err(format!(
                "stats --index takes no positional file (got {extra:?}); \
                 drop --index for the vocabulary report\n{USAGE}"
            ));
        }
        return cmd_stats_index(index_file, &flags);
    }
    let [file] = positional.as_slice() else {
        return Err(format!("stats needs <file.xml>\n{USAGE}"));
    };
    let top = flags.get_usize("top")?.unwrap_or(20);
    let tree = load_tree(file)?;
    let index = xks::index::InvertedIndex::build(&tree);
    println!("nodes          : {}", tree.len());
    println!("distinct labels: {}", tree.labels().len());
    println!("vocabulary     : {}", index.vocabulary_size());
    let mut freqs: Vec<(&str, usize)> = index.frequencies().collect();
    freqs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    println!("top {top} words by keyword-node count:");
    for (word, n) in freqs.into_iter().take(top) {
        println!("  {word:<24} {n}");
    }
    Ok(())
}

/// `xks stats --index`: the live-metrics form. Opens the index
/// (monolithic or sharded), optionally replays a `--queries` workload
/// through the engine, then prints one `xks-obs/1` snapshot — the
/// process-wide registry (search/executor/lock metrics) merged with the
/// index's own cache counters under the `index.` prefix.
fn cmd_stats_index(index_file: &str, flags: &Flags) -> Result<(), String> {
    // Durability counters are part of the documented snapshot even when
    // no mutable corpus is involved — explicit zeros, not absence.
    preregister_durability_metrics();
    let algo = parse_algo(flags)?;
    let top_k = flags.get_usize("top-k")?;
    let threads = flags.get_usize("threads")?.unwrap_or(1).max(1);

    // The collection handle and the engine share the same readers
    // (`Arc` all the way down), so the counters the workload bumps are
    // the ones collected below.
    enum Collector {
        Mono(Arc<IndexReader>),
        Sharded(ShardedCorpus),
    }
    let (engine, collector) = if is_shard_manifest(index_file)? {
        let corpus = ShardedCorpus::open(Path::new(index_file))
            .map_err(|e| format!("cannot open sharded index {index_file}: {e}"))?;
        let mut engine = SearchEngine::from_shard_set(corpus.shard_set());
        if let Some(threads) = flags.get_usize("shard-threads")? {
            engine = engine.with_scatter_threads(threads);
        }
        (engine, Collector::Sharded(corpus))
    } else {
        let reader = Arc::new(
            IndexReader::open(Path::new(index_file))
                .map_err(|e| format!("cannot open index {index_file}: {e}"))?,
        );
        let engine = SearchEngine::from_source(Arc::clone(&reader) as _);
        (engine, Collector::Mono(reader))
    };

    if let Some(queries_file) = flags.get_str("queries") {
        let lines = read_query_file(queries_file)?;
        let requests = build_requests(&lines, algo, top_k, false, false)?;
        if requests.is_empty() {
            return Err(format!("{queries_file} holds no queries"));
        }
        let (results, _) = run_batch_stats(&engine, &requests, threads);
        for result in results {
            result.map_err(|e| e.to_string())?;
        }
    }

    let mut snap = xks::obs::global().snapshot();
    match &collector {
        Collector::Mono(reader) => reader.collect_into("index.", &mut snap),
        Collector::Sharded(corpus) => corpus.collect_into("index.", &mut snap),
    }
    println!("{}", snap.to_json());
    Ok(())
}

/// `xks stats --corpus`: the mutable-corpus form of the live-metrics
/// snapshot. Opening the corpus runs recovery, so the `recovery.*` and
/// `wal.*` counters reflect what this open actually did; the corpus
/// contributes its WAL/delta/tombstone gauges (and the sealed base's
/// cache counters) under the `corpus.` prefix.
fn cmd_stats_corpus(dir: &str, flags: &Flags) -> Result<(), String> {
    let algo = parse_algo(flags)?;
    let top_k = flags.get_usize("top-k")?;
    let threads = flags.get_usize("threads")?.unwrap_or(1).max(1);
    let corpus = MutableCorpus::open(Path::new(dir))
        .map_err(|e| format!("cannot open corpus {dir}: {e}"))?;
    if let Some(queries_file) = flags.get_str("queries") {
        let lines = read_query_file(queries_file)?;
        let requests = build_requests(&lines, algo, top_k, false, false)?;
        if requests.is_empty() {
            return Err(format!("{queries_file} holds no queries"));
        }
        let engine = SearchEngine::from_source(corpus.source() as _);
        let (results, _) = run_batch_stats(&engine, &requests, threads);
        for result in results {
            result.map_err(|e| e.to_string())?;
        }
    }
    let mut snap = xks::obs::global().snapshot();
    corpus.collect_into("corpus.", &mut snap);
    println!("{}", snap.to_json());
    Ok(())
}

fn cmd_shred(args: &[String]) -> Result<(), String> {
    let (positional, _) = split_flags(args)?;
    let [file, out] = positional.as_slice() else {
        return Err(format!("shred needs <file.xml> and <out.json>\n{USAGE}"));
    };
    let tree = load_tree(file)?;
    let doc = xks::store::shred(&tree);
    xks::store::snapshot::save(&doc, Path::new(out))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!(
        "shredded {} elements / {} value rows -> {out}",
        doc.elements.len(),
        doc.values.len()
    );
    Ok(())
}

fn cmd_build_index(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let [file, out] = positional.as_slice() else {
        return Err(format!(
            "build-index needs <file.xml> and <out.xks>\n{USAGE}"
        ));
    };
    let writer = match flags.get_usize("page-size")? {
        None => IndexWriter::new(),
        Some(size) => {
            let size = u32::try_from(size).map_err(|_| "--page-size too large".to_owned())?;
            IndexWriter::with_page_size(size).map_err(|e| e.to_string())?
        }
    };
    let tree = load_tree(file)?;
    // Any explicit --shards (including 1) writes the manifest format;
    // the partitioner clamps the count, never this dispatch — so the
    // output format follows the flag, not an arithmetic accident.
    match flags.get_usize("shards")?.map(|n| n.max(1)) {
        None => {
            let summary = writer
                .write_tree(&tree, Path::new(out))
                .map_err(|e| format!("cannot write {out}: {e}"))?;
            eprintln!(
                "indexed {} elements / {} keywords ({} postings bytes) -> {out} \
                 ({} bytes, {}-byte pages)",
                summary.element_count,
                summary.keyword_count,
                summary.postings_len,
                summary.file_len,
                summary.page_size
            );
        }
        Some(shards) => {
            let doc = xks::store::shred(&tree);
            let summary = xks::persist::write_sharded(&writer, &doc, Path::new(out), shards)
                .map_err(|e| format!("cannot write {out}: {e}"))?;
            let manifest = &summary.manifest;
            eprintln!(
                "indexed {} elements / {} keywords into {} shard(s) -> {out} \
                 ({} bytes total)",
                manifest.total_elements,
                manifest.total_keywords,
                manifest.shards.len(),
                summary.total_file_len(),
            );
            for entry in &manifest.shards {
                eprintln!(
                    "  {}: docs {}..{} ({}), {} elements, {} keywords, {} bytes",
                    entry.file_name,
                    entry.first_doc,
                    u64::from(entry.first_doc) + entry.doc_count.saturating_sub(1),
                    entry.doc_count,
                    entry.element_count,
                    entry.keyword_count,
                    entry.file_len
                );
            }
            if manifest.shards.len() < shards {
                eprintln!(
                    "note: --shards {shards} clamped to {} (one shard per document at most)",
                    manifest.shards.len()
                );
            }
        }
    }
    Ok(())
}

/// The JSON fields shared by single-index stats and each shard's entry
/// (documented in docs/API.md).
fn index_stats_json(stats: &xks::persist::IndexStats) -> BTreeMap<String, Value> {
    obj([
        ("file_len", Value::Num(stats.file_len)),
        ("page_size", Value::Num(u64::from(stats.page_size))),
        ("elements", Value::Num(stats.element_count)),
        ("keywords", Value::Num(stats.keyword_count)),
        ("labels", Value::Num(stats.label_count)),
        ("postings_len", Value::Num(stats.postings_len)),
        ("postings_pages", Value::Num(stats.postings_pages)),
    ])
}

fn cmd_index_stats(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let format = Format::from_flags(&flags)?;
    let [file] = positional.as_slice() else {
        return Err(format!("index-stats needs <file.xks|file.xksm>\n{USAGE}"));
    };
    if is_shard_manifest(file)? {
        let corpus = ShardedCorpus::open(Path::new(file))
            .map_err(|e| format!("cannot open sharded index {file}: {e}"))?;
        corpus
            .verify()
            .map_err(|e| format!("sharded index {file} fails verification: {e}"))?;
        let manifest = corpus.manifest();
        let shard_stats = corpus.shard_stats();
        match format {
            Format::Json => {
                let shards: Vec<Value> = manifest
                    .shards
                    .iter()
                    .zip(&shard_stats)
                    .map(|(entry, stats)| {
                        let mut fields = index_stats_json(stats);
                        fields.insert("file".to_owned(), Value::Str(entry.file_name.clone()));
                        fields.insert(
                            "first_doc".to_owned(),
                            Value::Num(u64::from(entry.first_doc)),
                        );
                        fields.insert("docs".to_owned(), Value::Num(entry.doc_count));
                        Value::Obj(fields)
                    })
                    .collect();
                let value = Value::Obj(obj([
                    ("sharded", Value::Bool(true)),
                    ("shard_count", Value::Num(manifest.shards.len() as u64)),
                    (
                        "totals",
                        Value::Obj(obj([
                            (
                                "file_len",
                                Value::Num(shard_stats.iter().map(|s| s.file_len).sum()),
                            ),
                            ("elements", Value::Num(manifest.total_elements)),
                            ("keywords", Value::Num(manifest.total_keywords)),
                            ("labels", Value::Num(manifest.label_count)),
                        ])),
                    ),
                    ("shards", Value::Arr(shards)),
                    ("checksums", Value::Str("ok".to_owned())),
                    ("metrics", {
                        let mut snap = xks::obs::Snapshot::new();
                        corpus.collect_into("", &mut snap);
                        snapshot_json(&snap)
                    }),
                ]));
                println!("{}", json::to_string(&value));
            }
            Format::Text => {
                println!("shards         : {}", manifest.shards.len());
                println!("elements       : {}", manifest.total_elements);
                println!(
                    "keywords       : {} (distinct, corpus-wide)",
                    manifest.total_keywords
                );
                println!("labels         : {}", manifest.label_count);
                println!(
                    "file length    : {} bytes across shards",
                    shard_stats.iter().map(|s| s.file_len).sum::<u64>()
                );
                for (entry, stats) in manifest.shards.iter().zip(&shard_stats) {
                    println!(
                        "  {} : docs {}+{}, {} elements, {} keywords, {} bytes",
                        entry.file_name,
                        entry.first_doc,
                        entry.doc_count,
                        stats.element_count,
                        stats.keyword_count,
                        stats.file_len
                    );
                }
                println!("checksums      : ok");
            }
        }
        return Ok(());
    }
    let reader =
        IndexReader::open(Path::new(file)).map_err(|e| format!("cannot open index {file}: {e}"))?;
    reader
        .verify()
        .map_err(|e| format!("index {file} fails verification: {e}"))?;
    let stats = reader.stats();
    match format {
        Format::Json => {
            let mut fields = index_stats_json(&stats);
            fields.insert("sharded".to_owned(), Value::Bool(false));
            fields.insert("checksums".to_owned(), Value::Str("ok".to_owned()));
            let mut snap = xks::obs::Snapshot::new();
            reader.collect_into("", &mut snap);
            fields.insert("metrics".to_owned(), snapshot_json(&snap));
            println!("{}", json::to_string(&Value::Obj(fields)));
        }
        Format::Text => {
            println!("file length    : {} bytes", stats.file_len);
            println!("page size      : {}", stats.page_size);
            println!("elements       : {}", stats.element_count);
            println!("keywords       : {}", stats.keyword_count);
            println!("labels         : {}", stats.label_count);
            println!(
                "postings       : {} bytes ({} pages)",
                stats.postings_len, stats.postings_pages
            );
            println!("checksums      : ok");
        }
    }
    Ok(())
}

// -- durability commands ------------------------------------------------

/// `xks verify --index`: stream the full CRC verification of a
/// monolithic `.xks` or every shard of a `.xksm` corpus. Exits non-zero
/// (via the `Err` path) on the first corrupt section, naming it.
fn cmd_verify(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let path = match (flags.get_str("index"), positional.as_slice()) {
        (Some(p), []) => p.to_owned(),
        (None, [p]) => p.clone(),
        _ => {
            return Err(format!(
                "verify needs --index <file.xks|file.xksm>\n{USAGE}"
            ))
        }
    };
    if is_shard_manifest(&path)? {
        let corpus = ShardedCorpus::open(Path::new(&path))
            .map_err(|e| format!("{path}: verification FAILED: {e}"))?;
        corpus
            .verify()
            .map_err(|e| format!("{path}: verification FAILED: {e}"))?;
        let manifest = corpus.manifest();
        println!(
            "{path}: ok ({} shard(s), {} elements, {} keywords, every checksum verified)",
            manifest.shards.len(),
            manifest.total_elements,
            manifest.total_keywords
        );
    } else {
        let reader = IndexReader::open(Path::new(&path))
            .map_err(|e| format!("{path}: verification FAILED: {e}"))?;
        reader
            .verify()
            .map_err(|e| format!("{path}: verification FAILED: {e}"))?;
        let stats = reader.stats();
        println!(
            "{path}: ok ({} elements, {} keywords, every checksum verified)",
            stats.element_count, stats.keyword_count
        );
    }
    Ok(())
}

/// Opens the mutable corpus in `dir`, creating it (root `<{root}/>`)
/// when the directory holds no corpus yet and creation is allowed.
fn open_or_create_corpus(
    dir: &str,
    root: Option<&str>,
    create: bool,
) -> Result<MutableCorpus, String> {
    let path = Path::new(dir);
    if MutableCorpus::exists(path) {
        MutableCorpus::open(path).map_err(|e| format!("cannot open corpus {dir}: {e}"))
    } else if create {
        let root = root.unwrap_or("corpus");
        eprintln!("creating new corpus in {dir} (root <{root}>)");
        MutableCorpus::create(path, root).map_err(|e| format!("cannot create corpus {dir}: {e}"))
    } else {
        Err(format!("no corpus in {dir} (insert creates one)"))
    }
}

/// `xks insert`: append one document to a WAL-backed corpus directory,
/// creating the corpus on first use. The document is durable (framed,
/// checksummed, fsynced) before the ordinal is reported.
fn cmd_insert(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let Some(dir) = flags.get_str("corpus") else {
        return Err(format!("insert needs --corpus <dir>\n{USAGE}"));
    };
    let [file] = positional.as_slice() else {
        return Err(format!("insert needs <file.xml>\n{USAGE}"));
    };
    let xml = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let mut corpus = open_or_create_corpus(dir, flags.get_str("root"), true)?;
    let ordinal = corpus
        .insert_xml(xml.trim())
        .map_err(|e| format!("cannot insert {file}: {e}"))?;
    eprintln!(
        "inserted document {ordinal} ({} WAL bytes durable, {} delta doc(s) pending compaction)",
        corpus.wal_len(),
        corpus.source().delta_doc_count()
    );
    Ok(())
}

/// `xks delete`: tombstone one document by ordinal. Durable in the WAL
/// before this reports success; the ordinal is never reused.
fn cmd_delete(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let Some(dir) = flags.get_str("corpus") else {
        return Err(format!("delete needs --corpus <dir>\n{USAGE}"));
    };
    if let [extra, ..] = positional.as_slice() {
        return Err(format!(
            "delete takes no positional file (got {extra:?})\n{USAGE}"
        ));
    }
    let Some(doc) = flags.get_usize("doc")? else {
        return Err(format!("delete needs --doc <ordinal>\n{USAGE}"));
    };
    let ordinal = u32::try_from(doc).map_err(|_| "--doc too large".to_owned())?;
    let mut corpus = open_or_create_corpus(dir, None, false)?;
    corpus
        .delete(ordinal)
        .map_err(|e| format!("cannot delete document {ordinal}: {e}"))?;
    eprintln!(
        "deleted document {ordinal} ({} tombstone(s) pending compaction)",
        corpus.source().tombstone_count()
    );
    Ok(())
}

/// `xks compact`: seal base + delta into a new generation of `.xks`
/// shards, swap the manifest atomically, and reset the WAL.
fn cmd_compact(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let Some(dir) = flags.get_str("corpus") else {
        return Err(format!("compact needs --corpus <dir>\n{USAGE}"));
    };
    if let [extra, ..] = positional.as_slice() {
        return Err(format!(
            "compact takes no positional file (got {extra:?})\n{USAGE}"
        ));
    }
    let shards = flags.get_usize("shards")?.unwrap_or(1).max(1);
    let mut corpus = open_or_create_corpus(dir, None, false)?;
    let summary = corpus
        .compact(shards)
        .map_err(|e| format!("compaction failed: {e}"))?;
    eprintln!(
        "sealed {} document(s) / {} element(s) into {} shard(s) (generation {}) -> {}",
        summary.sealed_docs,
        summary.total_elements,
        summary.shard_count,
        summary.generation,
        summary.manifest_path.display()
    );
    Ok(())
}

// -- workload matrix ----------------------------------------------------

/// `xks workload` — list, inspect, and materialize the scenario cells
/// of the workload matrix (see docs/WORKLOADS.md). Generated corpora
/// and query files feed straight into `xks bench`/`xks search`.
fn cmd_workload(args: &[String]) -> Result<(), String> {
    use xks::datagen::scenario::ScenarioSpec;

    let (positional, flags) = split_flags(args)?;
    match positional.first().map(String::as_str) {
        Some("list") => cmd_workload_list(&flags),
        Some("show") => {
            let name = positional
                .get(1)
                .ok_or_else(|| format!("workload show expects a cell name\n{USAGE}"))?;
            let spec = ScenarioSpec::parse(name).ok_or_else(|| {
                format!("unknown workload cell {name:?} (try: xks workload list)")
            })?;
            cmd_workload_show(&spec, &flags)
        }
        Some("generate") => {
            let which = positional.get(1).ok_or_else(|| {
                format!("workload generate expects a cell name or \"all\"\n{USAGE}")
            })?;
            let specs = if which == "all" {
                ScenarioSpec::matrix()
            } else {
                vec![ScenarioSpec::parse(which).ok_or_else(|| {
                    format!("unknown workload cell {which:?} (try: xks workload list)")
                })?]
            };
            cmd_workload_generate(&specs, flags.get_str("out").unwrap_or("."))
        }
        Some(other) => Err(format!(
            "unknown workload subcommand {other:?} (list | show | generate)\n{USAGE}"
        )),
        None => Err(format!(
            "workload expects a subcommand: list | show <cell> | generate <cell>|all\n{USAGE}"
        )),
    }
}

fn workload_cell_meta(spec: &xks::datagen::scenario::ScenarioSpec) -> Value {
    Value::Obj(wire::obj([
        ("name", Value::Str(spec.name())),
        ("scale", Value::Num(u64::from(spec.scale))),
        ("shape", Value::Str(spec.shape.token().to_owned())),
        ("skew", Value::Str(spec.skew.token().to_owned())),
        ("tenancy", Value::Str(spec.tenancy.token())),
        ("records", Value::Num(spec.records() as u64)),
    ]))
}

fn cmd_workload_list(flags: &Flags) -> Result<(), String> {
    use xks::datagen::scenario::ScenarioSpec;

    let matrix = ScenarioSpec::matrix();
    match Format::from_flags(flags)? {
        Format::Json => {
            let cells: Vec<Value> = matrix.iter().map(workload_cell_meta).collect();
            let root = Value::Obj(wire::obj([
                ("schema", Value::Str("xks-workload-list/1".to_owned())),
                ("cells", Value::Arr(cells)),
            ]));
            println!("{}", json::to_string(&root));
        }
        Format::Text => {
            println!(
                "{:<26} {:>5}  {:<5} {:<8} {:<8} {:>8}",
                "cell", "scale", "shape", "skew", "tenancy", "records"
            );
            for spec in &matrix {
                println!(
                    "{:<26} {:>5}  {:<5} {:<8} {:<8} {:>8}",
                    spec.name(),
                    spec.scale,
                    spec.shape.token(),
                    spec.skew.token(),
                    spec.tenancy.token(),
                    spec.records(),
                );
            }
        }
    }
    Ok(())
}

fn cmd_workload_show(
    spec: &xks::datagen::scenario::ScenarioSpec,
    flags: &Flags,
) -> Result<(), String> {
    use xks::datagen::scenario::QueryClass;

    let scenario = spec.generate();
    let max_depth = scenario
        .tree
        .preorder()
        .map(|id| scenario.tree.depth(id))
        .max()
        .unwrap_or(0);
    match Format::from_flags(flags)? {
        Format::Json => {
            let classes: Vec<Value> = QueryClass::ALL
                .iter()
                .map(|class| {
                    Value::Obj(wire::obj([
                        ("class", Value::Str(class.name().to_owned())),
                        (
                            "queries",
                            Value::Arr(
                                scenario
                                    .queries_of(*class)
                                    .iter()
                                    .map(|q| Value::Str((*q).to_owned()))
                                    .collect(),
                            ),
                        ),
                    ]))
                })
                .collect();
            let mut root = workload_cell_meta(spec);
            if let Value::Obj(map) = &mut root {
                map.insert(
                    "schema".to_owned(),
                    Value::Str("xks-workload-show/1".to_owned()),
                );
                map.insert(
                    "elements".to_owned(),
                    Value::Num(scenario.tree.len() as u64),
                );
                map.insert("tenants".to_owned(), Value::Num(scenario.tenants as u64));
                map.insert("max_depth".to_owned(), Value::Num(max_depth as u64));
                map.insert("classes".to_owned(), Value::Arr(classes));
            }
            println!("{}", json::to_string(&root));
        }
        Format::Text => {
            println!(
                "{}: {} records, {} elements, {} tenant(s), max depth {}",
                spec.name(),
                scenario.records,
                scenario.tree.len(),
                scenario.tenants,
                max_depth,
            );
            for class in QueryClass::ALL {
                let queries = scenario.queries_of(class);
                println!("  {} ({}):", class.name(), queries.len());
                for q in queries {
                    println!("    {q}");
                }
            }
        }
    }
    Ok(())
}

fn cmd_workload_generate(
    specs: &[xks::datagen::scenario::ScenarioSpec],
    out: &str,
) -> Result<(), String> {
    use std::fmt::Write as _;
    use xks::datagen::scenario::QueryClass;
    use xks::xmltree::writer::to_xml_compact;

    let dir = Path::new(out);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {out}: {e}"))?;
    for spec in specs {
        let name = spec.name();
        let scenario = spec.generate();

        let xml_path = dir.join(format!("{name}.xml"));
        std::fs::write(&xml_path, to_xml_compact(&scenario.tree))
            .map_err(|e| format!("cannot write {}: {e}", xml_path.display()))?;

        // The query file doubles as an `xks bench --queries` workload:
        // class markers are comments, which the bench reader skips.
        let mut queries = format!("# workload cell {name} (seed {:#x})\n", spec.seed);
        for class in QueryClass::ALL {
            let _ = writeln!(queries, "# class: {}", class.name());
            for q in scenario.queries_of(class) {
                let _ = writeln!(queries, "{q}");
            }
        }
        let q_path = dir.join(format!("{name}.queries.txt"));
        std::fs::write(&q_path, queries)
            .map_err(|e| format!("cannot write {}: {e}", q_path.display()))?;

        eprintln!(
            "wrote {} ({} records, {} elements) and {} ({} queries)",
            xml_path.display(),
            scenario.records,
            scenario.tree.len(),
            q_path.display(),
            scenario.queries.len(),
        );
    }
    Ok(())
}

// -- tiny flag parser ---------------------------------------------------

struct Flags(Vec<(String, Option<String>)>);

impl Flags {
    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|(n, _)| n == name)
    }
    fn get_str(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }
    fn get_usize(&self, name: &str) -> Result<Option<usize>, String> {
        match self.get_str(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} expects a number, got {v:?}")),
        }
    }
}

/// Splits positional arguments from `--flag [value]` pairs. Flags taking
/// values: `algo`, `limit`, `top`, `top-k`, `format`, `index`,
/// `page-size`, `threads`, `queries`, `sweeps`, `shards`,
/// `shard-threads`, `trace-out`, `corpus`, `doc`, `root`, `timeout-ms`,
/// and the `serve` knobs (`addr`, `port`, `workers`, `queue-depth`,
/// `drain-ms`, `idle-ms`, `max-body-bytes`).
fn split_flags(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    const VALUED: [&str; 25] = [
        "out",
        "algo",
        "limit",
        "top",
        "top-k",
        "format",
        "index",
        "page-size",
        "threads",
        "queries",
        "sweeps",
        "shards",
        "shard-threads",
        "trace-out",
        "corpus",
        "doc",
        "root",
        "timeout-ms",
        "addr",
        "port",
        "workers",
        "queue-depth",
        "drain-ms",
        "idle-ms",
        "max-body-bytes",
    ];
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if VALUED.contains(&name) {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--{name} expects a value"))?;
                flags.push((name.to_owned(), Some(v.clone())));
            } else {
                flags.push((name.to_owned(), None));
            }
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, Flags(flags)))
}
