//! `xks` — command-line XML keyword search.
//!
//! ```text
//! xks search <file.xml> "<keywords>" ["<keywords>" ...] [--algo valid|maxmatch|slca] [--limit N] [--xml]
//! xks search --index <file.xks> "<keywords>" ["<keywords>" ...] [--algo ...] [--limit N] [--threads N]
//! xks bench  --index <file.xks> --queries <queries.txt> [--threads N] [--sweeps N] [--algo ...]
//! xks compare <file.xml> "<keywords>"
//! xks stats <file.xml> [--top N]
//! xks shred <file.xml> <out.json>
//! xks build-index <file.xml> <out.xks> [--page-size N]
//! xks index-stats <file.xks>
//! ```

use std::path::Path;
use std::process::ExitCode;

use xks::core::engine::{AlgorithmKind, SearchEngine};
use xks::core::executor::run_batch_stats;
use xks::index::Query;
use xks::persist::{IndexReader, IndexWriter};
use xks::xmltree::XmlTree;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "search" => cmd_search(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "shred" => cmd_shred(&args[1..]),
        "build-index" => cmd_build_index(&args[1..]),
        "index-stats" => cmd_index_stats(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("xks: {msg}");
            ExitCode::from(1)
        }
    }
}

const USAGE: &str = "usage:
  xks search  <file.xml> \"<keywords>\" [\"<keywords>\" ...] [--algo valid|maxmatch|slca] [--limit N] [--xml] [--rank] [--threads N]
  xks search  --index <file.xks> \"<keywords>\" [\"<keywords>\" ...] [--algo valid|maxmatch|slca] [--limit N] [--rank] [--threads N]
  xks bench   --index <file.xks> --queries <queries.txt> [--threads N] [--sweeps N] [--algo valid|maxmatch|slca]
  xks bench   <file.xml> --queries <queries.txt> [--threads N] [--sweeps N] [--algo valid|maxmatch|slca]
  xks compare <file.xml> \"<keywords>\"
  xks stats   <file.xml> [--top N]
  xks shred   <file.xml> <out.json>
  xks build-index <file.xml> <out.xks> [--page-size N]
  xks index-stats <file.xks>";

fn load_tree(path: &str) -> Result<XmlTree, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    xks::xmltree::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn parse_query(text: &str) -> Result<Query, String> {
    Query::parse(text).map_err(|e| format!("bad query: {e}"))
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let algo = match flags.get_str("algo").unwrap_or("valid") {
        "valid" => AlgorithmKind::ValidRtf,
        "maxmatch" => AlgorithmKind::MaxMatchRtf,
        "slca" => AlgorithmKind::MaxMatchSlca,
        other => return Err(format!("unknown --algo {other:?}")),
    };
    let limit = flags.get_usize("limit")?.unwrap_or(usize::MAX);
    let threads = flags.get_usize("threads")?.unwrap_or(1);
    let as_xml = flags.has("xml");
    let ranked = flags.has("rank");

    // One or more query strings; several queries fan out over the
    // executor's worker threads (`--threads N`).
    let (engine, keyword_args) = match flags.get_str("index") {
        Some(index_file) => {
            let keywords = positional.as_slice();
            if keywords.is_empty() {
                return Err(format!("search --index needs <keywords>\n{USAGE}"));
            }
            if as_xml {
                return Err(
                    "--xml needs the original document; shredded indexes keep only \
                     keywords (drop --xml or search the .xml file)"
                        .to_owned(),
                );
            }
            let reader = IndexReader::open(Path::new(index_file))
                .map_err(|e| format!("cannot open index {index_file}: {e}"))?;
            (SearchEngine::from_owned_source(reader), keywords)
        }
        None => {
            let [file, keywords @ ..] = positional.as_slice() else {
                return Err(format!("search needs <file.xml> and <keywords>\n{USAGE}"));
            };
            if keywords.is_empty() {
                return Err(format!("search needs <file.xml> and <keywords>\n{USAGE}"));
            }
            (SearchEngine::new(load_tree(file)?), keywords)
        }
    };
    let queries: Vec<Query> = keyword_args
        .iter()
        .map(|k| parse_query(k))
        .collect::<Result<_, _>>()?;
    let (results, _) = run_batch_stats(&engine, &queries, algo, threads);

    for (query, mut out) in queries.iter().zip(results) {
        if ranked {
            let order = xks::core::rank(
                &out.fragments,
                query.len(),
                &xks::core::RankWeights::default(),
            );
            out.fragments = order
                .iter()
                .map(|r| out.fragments[r.index].clone())
                .collect();
        }

        if queries.len() > 1 {
            println!("## query: {query}");
        }
        eprintln!(
            "{} fragment(s) in {:?} ({:?} after keyword retrieval)",
            out.fragments.len(),
            out.timings.total(),
            out.timings.algorithm_time()
        );
        for frag in out.fragments.iter().take(limit) {
            println!("# anchor {}", frag.anchor);
            match engine.corpus() {
                Some(source) => print!("{}", frag.render_source(source)),
                None if as_xml => println!("{}", frag.to_xml(engine.tree())),
                None => print!("{}", frag.render(engine.tree())),
            }
        }
        if out.fragments.len() > limit {
            eprintln!("… {} more (raise --limit)", out.fragments.len() - limit);
        }
    }
    Ok(())
}

/// Batch mode: run a whole query file through the concurrent executor
/// against one shared engine and report aggregate throughput.
fn cmd_bench(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let algo = match flags.get_str("algo").unwrap_or("valid") {
        "valid" => AlgorithmKind::ValidRtf,
        "maxmatch" => AlgorithmKind::MaxMatchRtf,
        "slca" => AlgorithmKind::MaxMatchSlca,
        other => return Err(format!("unknown --algo {other:?}")),
    };
    let threads = flags.get_usize("threads")?.unwrap_or(1).max(1);
    let sweeps = flags.get_usize("sweeps")?.unwrap_or(3).max(1);
    let Some(queries_file) = flags.get_str("queries") else {
        return Err(format!("bench needs --queries <file>\n{USAGE}"));
    };

    let engine = match flags.get_str("index") {
        Some(index_file) => {
            if let [extra, ..] = positional.as_slice() {
                return Err(format!(
                    "bench --index takes no positional file (got {extra:?}); \
                     drop --index to bench an XML document\n{USAGE}"
                ));
            }
            let reader = IndexReader::open(Path::new(index_file))
                .map_err(|e| format!("cannot open index {index_file}: {e}"))?;
            SearchEngine::from_owned_source(reader)
        }
        None => {
            let [file] = positional.as_slice() else {
                return Err(format!("bench needs <file.xml> or --index\n{USAGE}"));
            };
            SearchEngine::new(load_tree(file)?)
        }
    };

    let text = std::fs::read_to_string(queries_file)
        .map_err(|e| format!("cannot read {queries_file}: {e}"))?;
    let queries: Vec<Query> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(parse_query)
        .collect::<Result<_, _>>()?;
    if queries.is_empty() {
        return Err(format!("{queries_file} holds no queries"));
    }

    // Untimed warm-up sweep, then timed sweeps.
    let _ = run_batch_stats(&engine, &queries, algo, threads);
    let start = std::time::Instant::now();
    let mut fragments = 0usize;
    let mut last_stats = None;
    for _ in 0..sweeps {
        let (results, stats) = run_batch_stats(&engine, &queries, algo, threads);
        fragments += results.iter().map(|r| r.fragments.len()).sum::<usize>();
        last_stats = Some(stats);
    }
    let elapsed = start.elapsed();
    let total = queries.len() * sweeps;
    let qps = total as f64 / elapsed.as_secs_f64();
    // Report the worker count the executor actually ran (it clamps the
    // request to the batch size), not the requested --threads.
    let ran = last_stats.as_ref().map_or(threads, |s| s.threads);
    println!(
        "{total} queries ({} x {sweeps} sweeps), {ran} thread(s): \
         {qps:.0} queries/sec ({elapsed:?} total, {fragments} fragments)",
        queries.len()
    );
    if let Some(stats) = last_stats {
        println!("last sweep work split: {:?}", stats.per_thread);
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let (positional, _) = split_flags(args)?;
    let [file, keywords] = positional.as_slice() else {
        return Err(format!("compare needs <file.xml> and <keywords>\n{USAGE}"));
    };
    let tree = load_tree(file)?;
    let engine = SearchEngine::new(tree);
    let query = parse_query(keywords)?;
    let cmp = engine.compare(&query);
    println!("RTFs      : {}", cmp.rtf_count);
    println!("ValidRTF  : {:?}", cmp.valid_rtf_time);
    println!("MaxMatch  : {:?}", cmp.max_match_time);
    println!("CFR       : {:.3}", cmp.effectiveness.cfr);
    println!("APR       : {:.3}", cmp.effectiveness.apr);
    println!("APR'      : {:.3}", cmp.effectiveness.apr_prime);
    println!("Max APR   : {:.3}", cmp.effectiveness.max_apr);
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let [file] = positional.as_slice() else {
        return Err(format!("stats needs <file.xml>\n{USAGE}"));
    };
    let top = flags.get_usize("top")?.unwrap_or(20);
    let tree = load_tree(file)?;
    let index = xks::index::InvertedIndex::build(&tree);
    println!("nodes          : {}", tree.len());
    println!("distinct labels: {}", tree.labels().len());
    println!("vocabulary     : {}", index.vocabulary_size());
    let mut freqs: Vec<(&str, usize)> = index.frequencies().collect();
    freqs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    println!("top {top} words by keyword-node count:");
    for (word, n) in freqs.into_iter().take(top) {
        println!("  {word:<24} {n}");
    }
    Ok(())
}

fn cmd_shred(args: &[String]) -> Result<(), String> {
    let (positional, _) = split_flags(args)?;
    let [file, out] = positional.as_slice() else {
        return Err(format!("shred needs <file.xml> and <out.json>\n{USAGE}"));
    };
    let tree = load_tree(file)?;
    let doc = xks::store::shred(&tree);
    xks::store::snapshot::save(&doc, Path::new(out))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!(
        "shredded {} elements / {} value rows -> {out}",
        doc.elements.len(),
        doc.values.len()
    );
    Ok(())
}

fn cmd_build_index(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let [file, out] = positional.as_slice() else {
        return Err(format!(
            "build-index needs <file.xml> and <out.xks>\n{USAGE}"
        ));
    };
    let writer = match flags.get_usize("page-size")? {
        None => IndexWriter::new(),
        Some(size) => {
            let size = u32::try_from(size).map_err(|_| "--page-size too large".to_owned())?;
            IndexWriter::with_page_size(size).map_err(|e| e.to_string())?
        }
    };
    let tree = load_tree(file)?;
    let summary = writer
        .write_tree(&tree, Path::new(out))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!(
        "indexed {} elements / {} keywords ({} postings bytes) -> {out} \
         ({} bytes, {}-byte pages)",
        summary.element_count,
        summary.keyword_count,
        summary.postings_len,
        summary.file_len,
        summary.page_size
    );
    Ok(())
}

fn cmd_index_stats(args: &[String]) -> Result<(), String> {
    let (positional, _) = split_flags(args)?;
    let [file] = positional.as_slice() else {
        return Err(format!("index-stats needs <file.xks>\n{USAGE}"));
    };
    let reader =
        IndexReader::open(Path::new(file)).map_err(|e| format!("cannot open index {file}: {e}"))?;
    reader
        .verify()
        .map_err(|e| format!("index {file} fails verification: {e}"))?;
    let stats = reader.stats();
    println!("file length    : {} bytes", stats.file_len);
    println!("page size      : {}", stats.page_size);
    println!("elements       : {}", stats.element_count);
    println!("keywords       : {}", stats.keyword_count);
    println!("labels         : {}", stats.label_count);
    println!(
        "postings       : {} bytes ({} pages)",
        stats.postings_len, stats.postings_pages
    );
    println!("checksums      : ok");
    Ok(())
}

// -- tiny flag parser ---------------------------------------------------

struct Flags(Vec<(String, Option<String>)>);

impl Flags {
    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|(n, _)| n == name)
    }
    fn get_str(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }
    fn get_usize(&self, name: &str) -> Result<Option<usize>, String> {
        match self.get_str(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} expects a number, got {v:?}")),
        }
    }
}

/// Splits positional arguments from `--flag [value]` pairs. Flags taking
/// values: `algo`, `limit`, `top`, `index`, `page-size`, `threads`,
/// `queries`, `sweeps`.
fn split_flags(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    const VALUED: [&str; 8] = [
        "algo",
        "limit",
        "top",
        "index",
        "page-size",
        "threads",
        "queries",
        "sweeps",
    ];
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if VALUED.contains(&name) {
                let v = it
                    .next()
                    .ok_or_else(|| format!("--{name} expects a value"))?;
                flags.push((name.to_owned(), Some(v.clone())));
            } else {
                flags.push((name.to_owned(), None));
            }
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, Flags(flags)))
}
