//! Differential oracle for the mutable-corpus subsystem: random
//! insert/delete/compact/reopen interleavings over a WAL-backed
//! [`MutableCorpus`] must produce **byte-identical** query results to a
//! corpus rebuilt from scratch out of the same surviving documents —
//! across the in-memory delta, the sealed on-disk base, and recovery
//! replay, on every checkpoint along the way.
//!
//! The oracle is built the honest way: shred the full XML of *every*
//! document ever inserted (so ordinals line up with the mutable path's
//! monotonic assignment), then drop the deleted ordinals at the table
//! level — holes and all — and query the result through the standard
//! [`MemoryCorpus`] backend.

use std::path::PathBuf;
use std::sync::Arc;

use xks::core::{AlgorithmKind, CorpusSource, MemoryCorpus, SearchEngine, SearchRequest};
use xks::datagen::queries::dblp_workload;
use xks::datagen::{generate_dblp, DblpConfig};
use xks::persist::{MutableCorpus, ShardedCorpus};
use xks::store::{shred, ShreddedDoc};
use xks::xmltree::writer::to_xml_subtree;

/// xorshift64* — deterministic op interleavings from one seed.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The top-level document ordinal of a dotted dewey string (`None` for
/// the corpus root).
fn top_ordinal(dewey: &str) -> Option<u32> {
    let rest = &dewey[dewey.find('.')? + 1..];
    rest.split('.').next().unwrap_or(rest).parse().ok()
}

/// Rebuild-from-scratch oracle: one corpus holding every inserted
/// document at its original ordinal, minus the deleted ones.
fn oracle(root_label: &str, inserted: &[String], deleted: &[u32]) -> MemoryCorpus {
    let xml = format!("<{root_label}>{}</{root_label}>", inserted.concat());
    let full = shred(&xks::xmltree::parse(&xml).unwrap());
    let live = |dewey: &str| top_ordinal(dewey).is_none_or(|o| !deleted.contains(&o));
    let elements = full
        .elements
        .iter()
        .filter(|r| live(&r.dewey))
        .cloned()
        .collect();
    let values = full
        .values
        .iter()
        .filter(|r| live(&r.dewey))
        .cloned()
        .collect();
    let mut doc = ShreddedDoc::from_tables(full.labels.clone(), elements, values);
    doc.rebuild_indexes();
    MemoryCorpus::new(doc)
}

/// Renders every hit of every workload query under `kind` — the
/// byte-exact observable the two backends must agree on.
fn render_all(source: Arc<dyn CorpusSource>, kind: AlgorithmKind) -> Vec<String> {
    let engine = SearchEngine::from_source(Arc::clone(&source));
    let mut out = Vec::new();
    for (abbrev, keywords) in dblp_workload() {
        let request = SearchRequest::parse(&keywords).unwrap().algorithm(kind);
        let response = engine.execute(&request).unwrap();
        out.push(format!("## {abbrev}: {} hits", response.hits.len()));
        for hit in &response.hits {
            out.push(hit.fragment.render_source(source.as_ref()));
        }
    }
    out
}

fn assert_matches_oracle(
    label: &str,
    source: Arc<dyn CorpusSource>,
    root_label: &str,
    inserted: &[String],
    deleted: &[u32],
    kinds: &[AlgorithmKind],
) {
    let oracle = Arc::new(oracle(root_label, inserted, deleted)) as Arc<dyn CorpusSource>;
    for &kind in kinds {
        let got = render_all(Arc::clone(&source), kind);
        let want = render_all(Arc::clone(&oracle), kind);
        assert_eq!(
            got, want,
            "{label}: {kind:?} diverged from rebuild-from-scratch"
        );
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("xks-mutable-differential")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn random_interleavings_match_rebuild_from_scratch() {
    // A pool of realistic documents: the top-level records of a
    // generated DBLP corpus, re-serialized one by one.
    let tree = generate_dblp(&DblpConfig::with_records(90, 42));
    let root_label = tree.label_name(tree.root()).to_owned();
    let pool: Vec<String> = tree
        .node(tree.root())
        .children()
        .iter()
        .map(|&child| to_xml_subtree(&tree, child))
        .collect();

    for seed in [1u64, 7, 42] {
        let dir = scratch_dir(&format!("seed{seed}"));
        let mut gen = Gen(seed);
        let mut corpus = MutableCorpus::create(&dir, &root_label).unwrap();
        let mut inserted: Vec<String> = Vec::new();
        let mut deleted: Vec<u32> = Vec::new();

        for step in 0..60 {
            match gen.below(100) {
                // Insert the next pool document (monotonic ordinals).
                0..=59 => {
                    if inserted.len() < pool.len() {
                        let xml = pool[inserted.len()].clone();
                        let ordinal = corpus.insert_xml(&xml).unwrap();
                        assert_eq!(
                            ordinal as usize,
                            inserted.len(),
                            "ordinals are assignment order"
                        );
                        inserted.push(xml);
                    }
                }
                // Delete a random live ordinal.
                60..=84 => {
                    let live: Vec<u32> = (0..inserted.len() as u32)
                        .filter(|o| !deleted.contains(o))
                        .collect();
                    if let Some(&ordinal) = live.get(gen.below(live.len().max(1) as u64) as usize) {
                        corpus.delete(ordinal).unwrap();
                        deleted.push(ordinal);
                    }
                }
                // Seal everything so far into 1–3 shards.
                85..=94 => {
                    corpus.compact(1 + gen.below(3) as usize).unwrap();
                }
                // Crash-free close + recovery replay.
                _ => {
                    drop(corpus);
                    corpus = MutableCorpus::open(&dir).unwrap();
                }
            }
            if step % 10 == 9 {
                assert_matches_oracle(
                    &format!("seed {seed}, step {step}"),
                    corpus.source() as Arc<dyn CorpusSource>,
                    &root_label,
                    &inserted,
                    &deleted,
                    &[AlgorithmKind::ValidRtf],
                );
            }
        }

        // Final checkpoint: recovery replay first, then every algorithm
        // over the live (base + delta) view.
        drop(corpus);
        let mut corpus = MutableCorpus::open(&dir).unwrap();
        assert_matches_oracle(
            &format!("seed {seed}, recovered"),
            corpus.source() as Arc<dyn CorpusSource>,
            &root_label,
            &inserted,
            &deleted,
            &[
                AlgorithmKind::ValidRtf,
                AlgorithmKind::MaxMatchRtf,
                AlgorithmKind::MaxMatchSlca,
            ],
        );

        // Disk backend: seal everything and query the shards directly —
        // no delta, no tombstones, pure on-disk read path.
        corpus.compact(2).unwrap();
        drop(corpus);
        let sealed = ShardedCorpus::open(&dir.join("corpus.xksm")).unwrap();
        assert_matches_oracle(
            &format!("seed {seed}, sealed"),
            Arc::new(sealed) as Arc<dyn CorpusSource>,
            &root_label,
            &inserted,
            &deleted,
            &[
                AlgorithmKind::ValidRtf,
                AlgorithmKind::MaxMatchRtf,
                AlgorithmKind::MaxMatchSlca,
            ],
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
