//! Property tests for the four axiomatic XKS properties (§4.3 analysis
//! claim (2)): data/query monotonicity and data/query consistency, for
//! ValidRTF and for the revised MaxMatch, over random documents, random
//! queries, random insertions and random query extensions.

use proptest::prelude::*;
use xks::core::axioms::{
    check_data_consistency, check_data_monotonicity, check_query_consistency,
    check_query_monotonicity, Algorithm,
};
use xks::core::{max_match_rtf, valid_rtf};
use xks::datagen::random_tree::{random_document, word, RandomDocConfig};
use xks::index::Query;

const ALGORITHMS: [(&str, Algorithm); 2] = [
    ("valid_rtf", valid_rtf as Algorithm),
    ("max_match_rtf", max_match_rtf as Algorithm),
];

fn doc(nodes: usize, seed: u64) -> xks::xmltree::XmlTree {
    random_document(&RandomDocConfig {
        nodes,
        labels: 3,
        words: 4,
        max_words_per_node: 2,
        seed,
    })
}

fn query(k: usize) -> Query {
    let words: Vec<String> = (0..k).map(word).collect();
    Query::from_words(&words).expect("non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn data_monotonicity(
        nodes in 2usize..40,
        seed in any::<u64>(),
        k in 1usize..4,
        parent_pick in any::<u64>(),
        kw_pick in 0usize..4,
        label_pick in 0usize..3,
    ) {
        let before = doc(nodes, seed);
        let mut after = before.clone();
        let parent = xks::datagen::random_tree::random_node(&after, parent_pick);
        after.insert_subtree(
            parent,
            &format!("l{label_pick}"),
            Some(&word(kw_pick)),
        );
        let q = query(k);
        for (name, algo) in ALGORITHMS {
            let out = check_data_monotonicity(algo, &before, &after, &q);
            prop_assert!(out.holds(), "{name}: {out:?}\ntree before:\n{before}");
        }
    }

    #[test]
    fn query_monotonicity(
        nodes in 2usize..40,
        seed in any::<u64>(),
        k in 1usize..3,
    ) {
        let tree = doc(nodes, seed);
        let base = query(k);
        let ext = base.with_keyword(&word(k)).expect("extends");
        for (name, algo) in ALGORITHMS {
            let out = check_query_monotonicity(algo, &tree, &base, &ext);
            prop_assert!(out.holds(), "{name}: {out:?}\ntree:\n{tree}");
        }
    }

    #[test]
    fn data_consistency(
        nodes in 2usize..40,
        seed in any::<u64>(),
        k in 1usize..4,
        parent_pick in any::<u64>(),
        kw_pick in 0usize..4,
        label_pick in 0usize..3,
    ) {
        let before = doc(nodes, seed);
        let mut after = before.clone();
        let parent = xks::datagen::random_tree::random_node(&after, parent_pick);
        let inserted = after.insert_subtree(
            parent,
            &format!("l{label_pick}"),
            Some(&word(kw_pick)),
        );
        let inserted_dewey = after.dewey(inserted).clone();
        let q = query(k);
        for (name, algo) in ALGORITHMS {
            let out = check_data_consistency(algo, &before, &after, &inserted_dewey, &q);
            prop_assert!(
                out.holds(),
                "{name}: {out:?}\ntree before:\n{before}\ninserted {inserted_dewey}"
            );
        }
    }

    #[test]
    fn query_consistency(
        nodes in 2usize..40,
        seed in any::<u64>(),
        k in 1usize..3,
    ) {
        let tree = doc(nodes, seed);
        let added = word(k);
        let ext = query(k).with_keyword(&added).expect("extends");
        for (name, algo) in ALGORITHMS {
            let out = check_query_consistency(algo, &tree, &ext, &added);
            prop_assert!(out.holds(), "{name}: {out:?}\ntree:\n{tree}");
        }
    }
}
