//! Helpers shared by the workload-digest tests
//! (`tests/workload_golden.rs` pins the single-thread results;
//! `tests/concurrent_differential.rs` re-derives the same digests from
//! many threads). Both must produce byte-identical lines, so the
//! format lives here exactly once.

#![allow(dead_code)] // each test crate uses a subset

use xks::core::{AlgorithmKind, CorpusSource, Fragment};

/// The golden digest of the 43-query workload × 3 algorithms, captured
/// before the zero-allocation rewrite (PR 2). Re-bless deliberately
/// with `XKS_BLESS_GOLDEN=1 cargo test -q --test workload_golden`.
pub const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/workload_digest.txt"
);

/// Every algorithm the digest covers, in golden-file order.
pub const ALGORITHMS: [AlgorithmKind; 3] = [
    AlgorithmKind::ValidRtf,
    AlgorithmKind::MaxMatchRtf,
    AlgorithmKind::MaxMatchSlca,
];

/// The algorithm names as they appear in the golden file.
pub fn algorithm_name(kind: AlgorithmKind) -> &'static str {
    match kind {
        AlgorithmKind::ValidRtf => "ValidRtf",
        AlgorithmKind::MaxMatchRtf => "MaxMatchRtf",
        AlgorithmKind::MaxMatchSlca => "MaxMatchSlca",
    }
}

fn fnv1a(bytes: &[u8], hash: &mut u64) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// One line of the golden digest: FNV-1a over the rendered fragments
/// of one (corpus, query, algorithm) triple.
pub fn digest_line(
    corpus: &str,
    abbrev: &str,
    kind: AlgorithmKind,
    fragments: &[Fragment],
    source: &dyn CorpusSource,
) -> String {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for fragment in fragments {
        fnv1a(fragment.render_source(source).as_bytes(), &mut hash);
        fnv1a(b"\x1e", &mut hash);
    }
    format!(
        "{corpus}/{abbrev}/{}: fragments={} fnv={hash:016x}",
        algorithm_name(kind),
        fragments.len(),
    )
}
