//! Counting-allocator proof of the zero-allocation hot path.
//!
//! A global allocator wrapper counts every `alloc`/`realloc` while a
//! measurement window is open. The assertions pin the PR's contract:
//!
//! 1. every Dewey operation on codes within `Dewey::INLINE_CAP`
//!    components is heap-free (clone, child/parent, LCA, ancestor
//!    iteration, in-place push/truncate);
//! 2. a **warm** anchor pipeline — posting merge, ELCA stack, SLCA
//!    eager lookup over real resolved keyword-node sets, with reused
//!    scratch buffers — performs zero heap allocations;
//! 3. a **warm** `.xks` postings decode into a reused [`DeweyListBuf`]
//!    arena performs zero heap allocations.
//!
//! The whole proof lives in ONE `#[test]` so no concurrently running
//! test can disturb the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use xks::datagen::{generate_dblp, DblpConfig};
use xks::index::{InvertedIndex, Query};
use xks::lca::{
    elca_from_merged, elca_into_context, indexed_lookup_eager_into, merge_postings_into,
    slca_into_context, ElcaScratch, QueryContext,
};
use xks::persist::codec::{get_postings_into, put_postings};
use xks::xmltree::{Dewey, DeweyListBuf};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Counts heap allocations performed by `f`.
fn count_allocs(f: impl FnOnce()) -> u64 {
    COUNTING.store(true, Ordering::SeqCst);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    COUNTING.store(false, Ordering::SeqCst);
    after - before
}

#[test]
fn warm_query_hot_path_is_allocation_free() {
    // ---- 1. Inline Dewey operations ------------------------------------
    let a: Dewey = "0.2.0.1".parse().unwrap();
    let b: Dewey = "0.2.0.3.0".parse().unwrap();
    assert!(a.is_inline() && b.is_inline());
    let n = count_allocs(|| {
        let mut cursor = a.clone();
        cursor.push_component(7);
        cursor.truncate(2);
        cursor.pop_component();
        let child = a.child(3);
        let parent = b.parent();
        let lca = a.lca(&b);
        let upper = b.subtree_upper_bound();
        let ancestors = b.ancestors().count();
        let ord = a < b && a.is_ancestor_of(&b) == b.is_descendant_of(&a);
        std::hint::black_box((cursor, child, parent, lca, upper, ancestors, ord));
    });
    assert_eq!(n, 0, "inline Dewey ops allocated {n} times");

    // ---- 2. Warm anchor pipeline over a real corpus --------------------
    let tree = generate_dblp(&DblpConfig::with_records(500, 7));
    let index = InvertedIndex::build(&tree);
    let query = Query::parse("data algorithm").unwrap();
    let sets = index.resolve(&query).expect("both keywords present");
    assert!(
        sets.sets()
            .iter()
            .flatten()
            .all(|d| d.len() <= Dewey::INLINE_CAP),
        "corpus codes must fit inline for the zero-allocation contract"
    );

    let mut merged = Vec::new();
    let mut elca_scratch = ElcaScratch::default();
    let mut anchors = Vec::new();
    let mut slcas = Vec::new();
    // Warm pass grows every buffer to steady-state capacity.
    merge_postings_into(sets.sets(), &mut merged);
    elca_from_merged(&merged, sets.len(), &mut elca_scratch, &mut anchors);
    indexed_lookup_eager_into(sets.sets(), &mut slcas);
    let warm_anchors = anchors.len();
    assert!(warm_anchors > 0, "workload query must produce anchors");

    let n = count_allocs(|| {
        merge_postings_into(sets.sets(), &mut merged);
        elca_from_merged(&merged, sets.len(), &mut elca_scratch, &mut anchors);
        indexed_lookup_eager_into(sets.sets(), &mut slcas);
    });
    assert_eq!(n, 0, "warm anchor pipeline allocated {n} times");
    assert_eq!(anchors.len(), warm_anchors, "results unchanged when warm");

    // ---- 3. Warm postings decode into the flat arena -------------------
    let postings: Vec<Dewey> = sets.set(0).to_vec();
    let mut encoded = Vec::new();
    put_postings(&mut encoded, &postings);
    let mut arena = DeweyListBuf::new();
    let mut pos = 0;
    get_postings_into(&encoded, &mut pos, &mut arena).expect("clean decode");
    assert_eq!(arena.len(), postings.len());

    let n = count_allocs(|| {
        let mut pos = 0;
        get_postings_into(&encoded, &mut pos, &mut arena).expect("clean decode");
    });
    assert_eq!(n, 0, "warm arena decode allocated {n} times");

    // ---- 4. Per-thread QueryContexts stay allocation-free when warm ----
    // The concurrency refactor moved the scratch buffers into
    // per-thread `QueryContext`s. The zero-allocation contract must
    // hold *per context*: two contexts (as two executor threads would
    // own), each warmed once, then both run the full anchor pipeline —
    // ELCA on one, SLCA on the other, then swapped — without a single
    // heap allocation.
    let mut ctx_a = QueryContext::new();
    let mut ctx_b = QueryContext::new();
    elca_into_context(sets.sets(), &mut ctx_a); // warm A
    slca_into_context(sets.sets(), &mut ctx_b); // warm B
    elca_into_context(sets.sets(), &mut ctx_b); // B also needs ELCA capacity
    slca_into_context(sets.sets(), &mut ctx_a); // A also needs SLCA capacity
    let n = count_allocs(|| {
        elca_into_context(sets.sets(), &mut ctx_a);
        slca_into_context(sets.sets(), &mut ctx_b);
        elca_into_context(sets.sets(), &mut ctx_b);
        slca_into_context(sets.sets(), &mut ctx_a);
    });
    assert_eq!(n, 0, "warm per-thread contexts allocated {n} times");
    assert_eq!(ctx_b.anchors.len(), warm_anchors, "ELCA results unchanged");

    // Decoding a postings run into a warm context's decode arena is
    // allocation-free too (the arena that used to live in the reader's
    // shared cache path now rides in the context).
    let mut pos = 0;
    get_postings_into(&encoded, &mut pos, &mut ctx_a.postings).expect("warm-up decode");
    let n = count_allocs(|| {
        let mut pos = 0;
        get_postings_into(&encoded, &mut pos, &mut ctx_a.postings).expect("clean decode");
    });
    assert_eq!(n, 0, "warm context decode arena allocated {n} times");

    // ---- 5. The request/response path preserves the warm pipeline -----
    // `SearchEngine::execute_with` drives the exact anchor stages
    // asserted zero-allocation above through the same `QueryContext`.
    // A warm context must reach a steady state: the second and third
    // warm executions allocate exactly the same amount (only the
    // unavoidable per-query output — postings clones, fragments, hits —
    // and no scratch re-growth), and strictly less than the cold run
    // that grew the buffers.
    use xks::core::{MemoryCorpus, SearchEngine, SearchRequest};
    let engine = SearchEngine::from_owned_source(MemoryCorpus::new(xks::store::shred(&tree)));
    let request = SearchRequest::parse("data algorithm").expect("parses");
    let mut ctx = QueryContext::new();
    let run = |ctx: &mut QueryContext| {
        std::hint::black_box(
            engine
                .execute_with(&request, ctx)
                .expect("memory backend cannot fail")
                .hits
                .len(),
        );
    };
    let cold = count_allocs(|| run(&mut ctx));
    let warm1 = count_allocs(|| run(&mut ctx));
    let warm2 = count_allocs(|| run(&mut ctx));
    assert!(
        warm1 < cold,
        "warm execute_with must reuse the context scratch (cold {cold}, warm {warm1})"
    );
    assert_eq!(
        warm1, warm2,
        "warm execute_with must be in steady state: no per-query scratch growth"
    );

    // ---- 6. Stage tracing adds zero allocations to the warm path ------
    // A traced request records spans into the context's preallocated
    // `QueryTrace` (inline `[Span; TRACE_SPAN_CAP]`, no heap) and the
    // response carries a by-value copy. The warm traced path must be in
    // the same steady state as the untraced one — allocation counts
    // identical, spans present, nothing dropped.
    let traced_request = SearchRequest::parse("data algorithm")
        .expect("parses")
        .trace(true);
    let run_traced = |ctx: &mut QueryContext| {
        let response = engine
            .execute_with(&traced_request, ctx)
            .expect("memory backend cannot fail");
        let trace = response
            .trace
            .as_ref()
            .expect("traced response has a trace");
        assert!(
            trace.spans().len() >= 5,
            "trace covers the pipeline stages (got {:?})",
            trace.spans()
        );
        assert_eq!(trace.dropped(), 0, "span buffer must not overflow");
        std::hint::black_box(response.hits.len());
    };
    run_traced(&mut ctx); // reach traced steady state
    let traced_warm1 = count_allocs(|| run_traced(&mut ctx));
    let traced_warm2 = count_allocs(|| run_traced(&mut ctx));
    assert_eq!(
        traced_warm1, traced_warm2,
        "traced warm execute_with must be in steady state"
    );
    assert_eq!(
        traced_warm1, warm1,
        "tracing must not allocate on the warm path (untraced {warm1}, traced {traced_warm1})"
    );
}
