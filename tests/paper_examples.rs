//! End-to-end reproduction of the paper's worked Examples 1–7 and
//! Figures 2–3, through the public API only.
//!
//! Each test names the paper artifact it pins down. The fixtures are the
//! reconstructed Figure 1(a) *Publications* instance and Figure 1(b)
//! *team* segment (`xks::xmltree::fixtures`).

use xks::core::{AlgorithmKind, SearchEngine, SearchRequest};
use xks::index::Query;
use xks::xmltree::fixtures::{publications, team, PAPER_QUERIES};
use xks::xmltree::Dewey;

fn d(s: &str) -> Dewey {
    s.parse().unwrap()
}

fn q(s: &str) -> Query {
    Query::parse(s).unwrap()
}

fn frag_deweys(frag: &xks::core::Fragment) -> Vec<String> {
    frag.deweys().iter().map(ToString::to_string).collect()
}

/// One search through the request/response API, unwrapped to the
/// fragment list (the paper artifacts are about fragments, not hits).
struct Results {
    fragments: Vec<xks::core::Fragment>,
}

fn search(engine: &SearchEngine, query: &Query, kind: AlgorithmKind) -> Results {
    let request = SearchRequest::from_query(query.clone()).algorithm(kind);
    Results {
        fragments: engine
            .execute(&request)
            .expect("tree backend cannot fail")
            .into_fragments(),
    }
}

/// Example 1, "[SLCA v.s LCA]": for Q2 the SLCA semantics returns only
/// the ref fragment (Figure 2(a)); the LCA fragment rooted at the
/// article (Figure 2(b)) is also interesting and ValidRTF returns both.
#[test]
fn example1_slca_vs_lca() {
    let engine = SearchEngine::new(publications());
    let query = q(PAPER_QUERIES[1]); // Q2 = "liu keyword"

    let slca_only = search(&engine, &query, AlgorithmKind::MaxMatchSlca);
    assert_eq!(slca_only.fragments.len(), 1);
    assert_eq!(slca_only.fragments[0].anchor, d("0.2.0.3.0"));
    // Figure 2(a): the single ref node.
    assert_eq!(frag_deweys(&slca_only.fragments[0]), ["0.2.0.3.0"]);

    let valid = search(&engine, &query, AlgorithmKind::ValidRtf);
    assert_eq!(valid.fragments.len(), 2);
    // Figure 2(b): article with authors-name, title, abstract paths.
    assert_eq!(
        frag_deweys(&valid.fragments[0]),
        [
            "0.2.0",
            "0.2.0.0",
            "0.2.0.0.0",
            "0.2.0.0.0.0",
            "0.2.0.1",
            "0.2.0.2"
        ]
    );
    assert_eq!(frag_deweys(&valid.fragments[1]), ["0.2.0.3.0"]);
}

/// Example 1, "[Returning only LCA/SLCA nodes]": for Q3 the only
/// interesting LCA is the root, and the raw fragment (Figure 2(c))
/// contains the uninteresting skyline title, which the meaningful RTF
/// (Figure 2(d)) prunes.
#[test]
fn example1_returning_only_lca_nodes_is_redundant() {
    let engine = SearchEngine::new(publications());
    let query = q(PAPER_QUERIES[2]); // Q3

    let valid = search(&engine, &query, AlgorithmKind::ValidRtf);
    assert_eq!(valid.fragments.len(), 1);
    let result = frag_deweys(&valid.fragments[0]);
    // Figure 2(d): everything about the XML-keyword-search paper plus
    // the conference title; the skyline article is gone.
    assert_eq!(
        result,
        [
            "0",
            "0.0",
            "0.2",
            "0.2.0",
            "0.2.0.1",
            "0.2.0.2",
            "0.2.0.3",
            "0.2.0.3.0"
        ]
    );
    assert!(!result.contains(&"0.2.1.1".to_owned()));
}

/// Example 2 "[Positive example]" / Figure 3(a): Q5 keeps only the
/// Gassol player under both filters.
#[test]
fn example2_positive_example_q5() {
    let engine = SearchEngine::new(team());
    let query = q(PAPER_QUERIES[4]); // Q5

    for kind in [AlgorithmKind::ValidRtf, AlgorithmKind::MaxMatchRtf] {
        let out = search(&engine, &query, kind);
        assert_eq!(out.fragments.len(), 1, "{kind:?}");
        let nodes = frag_deweys(&out.fragments[0]);
        assert!(nodes.contains(&"0.1.0.0".to_owned()), "Gassol kept");
        assert!(!nodes.contains(&"0.1.1".to_owned()), "Miller pruned");
        assert!(!nodes.contains(&"0.1.2".to_owned()), "Warrick pruned");
    }
}

/// Example 2 "[False positive problem]" / Figures 3(b)+3(c): MaxMatch
/// discards the title of the skyline paper for Q1; ValidRTF keeps it.
#[test]
fn example2_false_positive_q1() {
    let engine = SearchEngine::new(publications());
    let query = q(PAPER_QUERIES[0]); // Q1

    let valid = search(&engine, &query, AlgorithmKind::ValidRtf);
    assert_eq!(valid.fragments.len(), 1);
    // Figure 3(b): the full SLCA fragment.
    assert_eq!(
        frag_deweys(&valid.fragments[0]),
        [
            "0.2.1",
            "0.2.1.0",
            "0.2.1.0.0",
            "0.2.1.0.0.0",
            "0.2.1.0.1",
            "0.2.1.0.1.0",
            "0.2.1.1",
            "0.2.1.2"
        ]
    );

    let mm = search(&engine, &query, AlgorithmKind::MaxMatchRtf);
    // Figure 3(c): same minus the title.
    assert_eq!(
        frag_deweys(&mm.fragments[0]),
        [
            "0.2.1",
            "0.2.1.0",
            "0.2.1.0.0",
            "0.2.1.0.0.0",
            "0.2.1.0.1",
            "0.2.1.0.1.0",
            "0.2.1.2"
        ]
    );
}

/// Example 2 "[Redundancy problem]" / Figure 3(d): MaxMatch keeps both
/// "forward" players for Q4; ValidRTF deduplicates.
#[test]
fn example2_redundancy_q4() {
    let engine = SearchEngine::new(team());
    let query = q(PAPER_QUERIES[3]); // Q4

    let mm = search(&engine, &query, AlgorithmKind::MaxMatchRtf);
    let mm_nodes = frag_deweys(&mm.fragments[0]);
    for p in ["0.1.0.1", "0.1.1.1", "0.1.2.1"] {
        assert!(mm_nodes.contains(&p.to_owned()), "MaxMatch keeps {p}");
    }

    let valid = search(&engine, &query, AlgorithmKind::ValidRtf);
    let v_nodes = frag_deweys(&valid.fragments[0]);
    assert!(v_nodes.contains(&"0.1.0.1".to_owned()), "first forward");
    assert!(v_nodes.contains(&"0.1.1.1".to_owned()), "guard");
    assert!(!v_nodes.contains(&"0.1.2".to_owned()), "duplicate forward");
}

/// Example 3: the ECT_Q enumeration for Q2 has 11 elements (not 21,
/// because ref appears in both keyword lists).
#[test]
fn example3_ect_enumeration_count() {
    use xks::core::spec::enumerate_ect;
    let engine = SearchEngine::new(publications());
    let sets = engine
        .index()
        .resolve(&q(PAPER_QUERIES[1]))
        .expect("Q2 resolves");
    let ect = enumerate_ect(sets.sets()).expect("tiny input");
    assert_eq!(ect.len(), 11);
}

/// Example 4: exactly two of those combinations are RTFs — {r} and
/// {n, t, a} — and the pipeline's partitions match the specification.
#[test]
fn example4_rtfs_match_specification() {
    use xks::core::spec::spec_rtfs;
    use xks::lca::elca_stack;

    let engine = SearchEngine::new(publications());
    let sets = engine.index().resolve(&q(PAPER_QUERIES[1])).unwrap();

    let spec = spec_rtfs(sets.sets()).expect("tiny input");
    assert_eq!(spec.len(), 2);

    let anchors = elca_stack(sets.sets());
    let rtfs = xks::core::get_rtf(&anchors, &sets);
    assert_eq!(rtfs.len(), spec.len());
    for (got, want) in rtfs.iter().zip(&spec) {
        assert_eq!(got.anchor, want.anchor);
        let got_nodes: Vec<&Dewey> = got.knodes.iter().map(|(d, _)| d).collect();
        let want_nodes: Vec<&Dewey> = want.nodes.iter().collect();
        assert_eq!(got_nodes, want_nodes);
    }
}

/// Examples 6–7: the running Q3 walk-through — keyword node sets, the
/// single root anchor, and the pruning decisions on nodes 0 and 0.2.
#[test]
fn examples6_7_running_example() {
    let engine = SearchEngine::new(publications());
    let query = q(PAPER_QUERIES[2]);

    // Example 6: D1..D5.
    let sets = engine.index().resolve(&query).unwrap();
    let as_strings =
        |i: usize| -> Vec<String> { sets.set(i).iter().map(ToString::to_string).collect() };
    assert_eq!(as_strings(0), ["0.0"]); // vldb
    assert_eq!(as_strings(1), ["0.0", "0.2.0.1", "0.2.1.1"]); // title
    for i in 2..5 {
        assert_eq!(as_strings(i), ["0.2.0.1", "0.2.0.2", "0.2.0.3.0"]);
    }

    // Example 7: pruning keeps both children of the root (distinct
    // labels), keeps child 0.2.0 of Articles (key number 15, largest)
    // and discards 0.2.1 (8, covered by 15).
    let valid = search(&engine, &query, AlgorithmKind::ValidRtf);
    let nodes = frag_deweys(&valid.fragments[0]);
    assert!(nodes.contains(&"0.0".to_owned()));
    assert!(nodes.contains(&"0.2".to_owned()));
    assert!(nodes.contains(&"0.2.0".to_owned()));
    assert!(!nodes.contains(&"0.2.1".to_owned()));
}

/// The paper's §4.3 performance claim is about parity, not speedups —
/// sanity-check that both algorithms complete and agree on anchors for
/// every paper query on the fixtures.
#[test]
fn all_paper_queries_run_on_both_algorithms() {
    for (tree, queries) in [
        (publications(), &PAPER_QUERIES[..3]),
        (team(), &PAPER_QUERIES[3..]),
    ] {
        let engine = SearchEngine::new(tree);
        for query in queries {
            let v = search(&engine, &q(query), AlgorithmKind::ValidRtf);
            let x = search(&engine, &q(query), AlgorithmKind::MaxMatchRtf);
            assert_eq!(v.fragments.len(), x.fragments.len(), "{query}");
            for (a, b) in v.fragments.iter().zip(&x.fragments) {
                assert_eq!(a.anchor, b.anchor, "{query}");
            }
        }
    }
}
