//! The crash matrix: every write/fsync/rename/dirsync boundary in the
//! mutable-corpus paths (insert, delete, compact) gets killed with
//! every fault kind, and recovery must land the corpus **byte-identical
//! to either the pre-op or the post-op state** — never a third state,
//! never a panic, and never a lost *acknowledged* operation.
//!
//! Mechanics: a recording [`Injector`] pass enumerates the durability
//! boundaries each scenario crosses; then, for every `(boundary, fault
//! kind)` cell, the scenario reruns on a fresh copy of the baseline
//! directory with the fault armed, the handle is dropped where the
//! fault left it, and a clean reopen (crash recovery) is digested with
//! the full 43-query workload × 3 algorithms. The per-cell outcomes are
//! written to `target/crash-matrix/report-seed<seed>.txt` — the
//! recovery-differential report CI uploads as an artifact.
//!
//! `XKS_FAULT_SEED` varies the corpus material and the ordinals the
//! scenarios touch (CI runs a small matrix of seeds).

mod common;

use std::path::{Path, PathBuf};
use std::sync::Arc;

use common::{digest_line, ALGORITHMS};
use xks::core::{CorpusSource, SearchEngine, SearchRequest};
use xks::datagen::queries::{dblp_workload, xmark_workload};
use xks::datagen::{generate_dblp, DblpConfig};
use xks::persist::{FaultKind, Injector, MutableCorpus};
use xks::xmltree::writer::to_xml_subtree;

fn fault_seed() -> u64 {
    std::env::var("XKS_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

fn copy_dir(from: &Path, to: &Path) {
    let _ = std::fs::remove_dir_all(to);
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// The full workload digest of the corpus in `dir` after a clean
/// recovery: 43 queries (both workloads) × 3 algorithms, rendered and
/// hashed exactly like the golden workload digest.
fn recovered_digest(dir: &Path) -> Vec<String> {
    let corpus = MutableCorpus::open(dir)
        .unwrap_or_else(|e| panic!("recovery must always succeed ({}): {e}", dir.display()));
    let source = corpus.source();
    let engine = SearchEngine::from_source(Arc::clone(&source) as Arc<dyn CorpusSource>);
    let mut lines = Vec::new();
    for (workload_name, workload) in [("dblp", dblp_workload()), ("xmark", xmark_workload())] {
        for (abbrev, keywords) in workload {
            for kind in ALGORITHMS {
                let request = SearchRequest::parse(&keywords).unwrap().algorithm(kind);
                let response = engine.execute(&request).unwrap();
                let fragments: Vec<_> = response.hits.iter().map(|h| h.fragment.clone()).collect();
                lines.push(digest_line(
                    workload_name,
                    abbrev,
                    kind,
                    &fragments,
                    source.as_ref(),
                ));
            }
        }
    }
    lines
}

/// One mutating operation under test. Returns whether the corpus
/// acknowledged it (`Ok`) under the armed injector.
#[derive(Debug, Clone, Copy)]
enum Scenario {
    Insert,
    Delete,
    Compact,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::Insert => "insert",
            Scenario::Delete => "delete",
            Scenario::Compact => "compact",
        }
    }

    /// Runs open + op on `dir` under `injector`. An `Err` anywhere —
    /// including a failed open — counts as "not acknowledged".
    fn run(self, dir: &Path, injector: Injector, doc: &str, ordinal: u32) -> Result<(), String> {
        let mut corpus =
            MutableCorpus::open_with(dir, injector).map_err(|e| format!("open: {e}"))?;
        match self {
            Scenario::Insert => corpus.insert_xml(doc).map(|_| ()),
            Scenario::Delete => corpus.delete(ordinal),
            Scenario::Compact => corpus.compact(2).map(|_| ()),
        }
        .map_err(|e| e.to_string())
    }
}

#[test]
fn every_fault_recovers_to_pre_or_post_state() {
    let seed = fault_seed();
    let root = std::env::temp_dir().join(format!("xks-crash-matrix-seed{seed}"));
    let _ = std::fs::remove_dir_all(&root);

    // Baseline: a corpus with a sealed base, a live delta, and a
    // tombstone — every recovery path has something to do. Material
    // and the tombstoned ordinal vary with the seed; two *sentinel*
    // documents carry actual workload keywords so the digest is never
    // vacuously empty (a generated pool can miss every workload term),
    // and the operations under test target material that provably
    // moves it.
    let tree = generate_dblp(&DblpConfig::with_records(30, seed));
    let pool: Vec<String> = tree
        .node(tree.root())
        .children()
        .iter()
        .map(|&child| to_xml_subtree(&tree, child))
        .collect();
    let root_label = tree.label_name(tree.root()).to_owned();
    let baseline = root.join("baseline");
    {
        let mut corpus = MutableCorpus::create(&baseline, &root_label).unwrap();
        for doc in &pool[..6] {
            corpus.insert_xml(doc).unwrap();
        }
        // Sentinel A (sealed into the base): matches query "ks".
        corpus
            .insert_xml("<article><title>keyword similarity</title></article>")
            .unwrap();
        corpus.compact(2).unwrap();
        for doc in &pool[6..8] {
            corpus.insert_xml(doc).unwrap();
        }
        // Sentinel B (live in the delta): matches query "kr".
        corpus
            .insert_xml("<article><title>keyword recognition</title></article>")
            .unwrap();
        corpus.delete((seed % 6) as u32).unwrap();
    }
    let op_doc = "<article><title>keyword similarity recognition</title></article>".to_owned();
    let op_delete = 9; // sentinel B: deleting it must change "kr" results

    let mut report = vec![format!("crash-matrix recovery differential (seed {seed})")];
    let mut cells = 0usize;

    let pre = recovered_digest(&baseline);
    assert!(
        pre.iter().any(|line| !line.contains("fragments=0")),
        "baseline digest is vacuously empty — the sentinels are not matching"
    );
    // The Insert scenario's post digest, reused by the compact cells'
    // follow-up-insert usability check (runs first in the loop below).
    let mut insert_post: Vec<String> = Vec::new();

    for scenario in [Scenario::Insert, Scenario::Delete, Scenario::Compact] {
        // Pre/post digests: the only two states recovery may land in.
        let post_dir = root.join(format!("{}-post", scenario.name()));
        copy_dir(&baseline, &post_dir);
        scenario
            .run(&post_dir, Injector::none(), &op_doc, op_delete)
            .expect("fault-free op must succeed");
        let post = recovered_digest(&post_dir);
        match scenario {
            // Compaction reorganizes storage without touching query
            // results — pre and post digests coincide, and the matrix
            // additionally proves usability with a follow-up insert.
            Scenario::Compact => assert_eq!(
                pre, post,
                "compaction must be query-invariant (differential oracle property)"
            ),
            _ => assert_ne!(pre, post, "{}: op must change the digest", scenario.name()),
        }
        if matches!(scenario, Scenario::Insert) {
            insert_post = post.clone();
        }

        // Enumerate this scenario's durability boundaries.
        let recorder = Injector::recording();
        let record_dir = root.join(format!("{}-record", scenario.name()));
        copy_dir(&baseline, &record_dir);
        scenario
            .run(&record_dir, recorder.clone(), &op_doc, op_delete)
            .expect("recording injector must not fire");
        let labels = recorder.labels();
        let min_expected = match scenario {
            Scenario::Insert | Scenario::Delete => 2, // frame write + fsync
            Scenario::Compact => 8, // shards, manifest, rename, dirsync, WAL reset
        };
        assert!(
            labels.len() >= min_expected,
            "{}: only {} boundaries recorded — injection coverage regressed: {labels:?}",
            scenario.name(),
            labels.len()
        );
        report.push(format!(
            "{}: {} boundaries: {}",
            scenario.name(),
            labels.len(),
            labels.join(", ")
        ));

        for (i, label) in labels.iter().enumerate() {
            for kind in [FaultKind::Error, FaultKind::ShortWrite, FaultKind::Crash] {
                let cell_dir = root.join(format!("{}-b{i}-{kind:?}", scenario.name()));
                copy_dir(&baseline, &cell_dir);
                let injector = Injector::arm(i as u64, kind);
                let outcome = scenario.run(&cell_dir, injector.clone(), &op_doc, op_delete);
                assert!(
                    injector.fired(),
                    "{} boundary {i} ({label}): armed fault never reached",
                    scenario.name()
                );

                // The handle is dropped where the fault left it; a
                // clean reopen is the crash recovery under test.
                let recovered = recovered_digest(&cell_dir);
                let state = if recovered == pre {
                    "pre"
                } else if recovered == post {
                    "post"
                } else {
                    panic!(
                        "{} boundary {i} ({label}) {kind:?}: recovery landed in a third state",
                        scenario.name()
                    );
                };
                if outcome.is_ok() {
                    assert_eq!(
                        state,
                        "post",
                        "{} boundary {i} ({label}) {kind:?}: acknowledged op lost by recovery",
                        scenario.name()
                    );
                }
                // Wherever compaction died, the recovered corpus must
                // remain fully writable: a fault-free follow-up insert
                // lands the same digest as inserting on the baseline.
                if matches!(scenario, Scenario::Compact) {
                    Scenario::Insert
                        .run(&cell_dir, Injector::none(), &op_doc, op_delete)
                        .unwrap_or_else(|e| {
                            panic!(
                                "compact boundary {i} ({label}) {kind:?}: \
                                 recovered corpus rejected a follow-up insert: {e}"
                            )
                        });
                    assert_eq!(
                        recovered_digest(&cell_dir),
                        insert_post,
                        "compact boundary {i} ({label}) {kind:?}: \
                         follow-up insert diverged after recovery"
                    );
                }
                report.push(format!(
                    "{} boundary={i} label={label} kind={kind:?} op={} recovered={state}",
                    scenario.name(),
                    if outcome.is_ok() { "ok" } else { "err" },
                ));
                cells += 1;
                let _ = std::fs::remove_dir_all(&cell_dir);
            }
        }
    }

    report.push(format!("{cells} cells, all recovered to pre or post"));
    let report_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("crash-matrix");
    std::fs::create_dir_all(&report_dir).unwrap();
    std::fs::write(
        report_dir.join(format!("report-seed{seed}.txt")),
        report.join("\n") + "\n",
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(&root);
}
