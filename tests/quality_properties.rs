//! Property tests for the PR 10 quality harness itself
//! (`validrtf::quality`): score bounds over random documents, the
//! ValidRTF fixed point on every generated scenario, and detection of
//! deliberately broken oracles (an SLCA miss on a crafted nesting and
//! a monotonicity-breaking duplicator).

use proptest::prelude::*;
use xks::core::axioms::Algorithm;
use xks::core::quality::{algorithms, assess, QualityConfig};
use xks::core::{max_match_slca, valid_rtf, Fragment};
use xks::datagen::random_tree::{random_document, word, RandomDocConfig};
use xks::datagen::scenario::{QueryClass, Scenario, ScenarioSpec};
use xks::index::{InvertedIndex, Query};
use xks::xmltree::XmlTree;

fn doc(nodes: usize, seed: u64) -> XmlTree {
    random_document(&RandomDocConfig {
        nodes,
        labels: 3,
        words: 4,
        max_words_per_node: 2,
        seed,
    })
}

/// Keyword-only queries of a scenario, as the quality pass consumes
/// them (grammar operators are engine-level; `Algorithm` speaks plain
/// conjunctions).
fn quality_queries(scenario: &Scenario) -> Vec<Query> {
    let mut queries = Vec::new();
    for class in [QueryClass::Plain, QueryClass::Adversarial] {
        for text in scenario.queries_of(class) {
            queries.push(Query::parse(text).expect("plain/adversarial queries are keyword lists"));
        }
    }
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Precision, recall, F1, and the combined score all stay in
    /// `[0, 1]` for every algorithm over random documents and queries.
    #[test]
    fn scores_stay_in_bounds(
        nodes in 2usize..40,
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        let tree = doc(nodes, seed);
        let words: Vec<String> = (0..k).map(word).collect();
        let queries = vec![Query::from_words(&words).expect("non-empty")];
        for (name, algo) in algorithms() {
            let report = assess(&tree, &queries, algo, &QualityConfig::default());
            for (metric, v) in [
                ("precision", report.precision),
                ("recall", report.recall),
                ("f1", report.f1),
                ("score", report.score()),
            ] {
                prop_assert!(
                    (0.0..=1.0).contains(&v),
                    "{name}: {metric} = {v} out of bounds"
                );
            }
            prop_assert!(report.axioms.violations() <= report.axioms.checks);
        }
    }
}

/// ValidRTF is the fixed point of its own reference: perfect
/// precision/recall and zero axiom violations — score exactly 1.0 —
/// on every smoke scenario (every shape, both skews, both tenancy
/// mixes). The full 12-cell grid runs under `XKS_FULL_MATRIX=1`.
#[test]
fn valid_rtf_scores_one_on_every_scenario() {
    let specs = if std::env::var_os("XKS_FULL_MATRIX").is_some() {
        ScenarioSpec::matrix()
    } else {
        ScenarioSpec::smoke()
    };
    for spec in specs {
        let scenario = spec.generate();
        let queries = quality_queries(&scenario);
        assert!(!queries.is_empty(), "{}: no quality queries", spec.name());
        let cfg = QualityConfig::for_tree(&scenario.tree);
        let report = assess(&scenario.tree, &queries, valid_rtf, &cfg);
        assert_eq!(report.precision, 1.0, "{}", spec.name());
        assert_eq!(report.recall, 1.0, "{}", spec.name());
        assert_eq!(
            report.axioms.violations(),
            0,
            "{}: {:?}",
            spec.name(),
            report.axioms
        );
        assert_eq!(report.score(), 1.0, "{}", spec.name());
    }
}

/// A crafted nesting where the root is an interesting LCA *above* the
/// SLCA: SLCA-MaxMatch misses the upper anchor, and the harness must
/// report the recall loss rather than a perfect score.
#[test]
fn slca_on_crafted_nesting_is_detected() {
    use xks::xmltree::TreeBuilder;
    let mut b = TreeBuilder::new("r");
    b.open("s");
    b.leaf("t", "xml keyword");
    b.close();
    b.leaf("u", "xml");
    b.leaf("v", "keyword");
    let tree = b.build();

    let queries = vec![Query::parse("xml keyword").unwrap()];
    let report = assess(&tree, &queries, max_match_slca, &QualityConfig::default());
    assert!(report.recall < 1.0, "recall = {}", report.recall);
    assert!(report.score() < 1.0);
}

/// A deliberately broken oracle — returns nothing as soon as the
/// corpus contains a label it has never seen — scores perfectly on the
/// unperturbed set-overlap metrics, but the axiom pass inserts exactly
/// such a node (labeled `probe`) and must flag the resulting
/// data-monotonicity collapse with a nonzero violation count that
/// drags the combined score below F1.
#[test]
fn broken_oracle_yields_nonzero_violations() {
    fn broken(tree: &XmlTree, index: &InvertedIndex, query: &Query) -> Vec<Fragment> {
        if tree.preorder().any(|id| tree.label_name(id) == "probe") {
            return Vec::new();
        }
        valid_rtf(tree, index, query)
    }

    let scenario = ScenarioSpec::parse("s1-flat-zipf-single")
        .expect("known cell")
        .generate();
    let queries = quality_queries(&scenario);
    let report = assess(
        &scenario.tree,
        &queries,
        broken as Algorithm,
        &QualityConfig::default(),
    );
    assert!(
        report.axioms.violations() > 0,
        "broken oracle not flagged: {:?}",
        report.axioms
    );
    assert!(report.score() < report.f1);
}
