//! Sharded-vs-unsharded differential over the 43-query golden workload.
//!
//! The sharded read path must be **byte-identical** to the unsharded
//! one — same fragments, same rendering, same stats — whatever the
//! shard count, backend, or scatter fan-out. This test replays the full
//! Figure 5/6 workload (DBLP + XMark, 43 queries × 3 algorithms)
//! through sharded engines at 1, 2, and 4 shards on **both** backends:
//!
//! * **memory** — `xks_store::partition` parts wrapped in
//!   `MemoryCorpus` shards under a `validrtf::ShardSet`;
//! * **disk** — `xks_persist::write_sharded` corpora reopened through
//!   `ShardedCorpus`, searched both via scatter-gather
//!   (`SearchEngine::from_shard_set`) and via the serial routed
//!   `CorpusSource` path,
//!
//! and asserts every configuration reproduces
//! `tests/golden/workload_digest.txt` line for line — the digest
//! captured before the zero-allocation rewrite and pinned ever since.
//! A corrupted shard manifest must fail open with a typed error, never
//! panic or serve wrong results.

mod common;

use std::sync::Arc;

use common::{digest_line, ALGORITHMS, GOLDEN};
use xks::core::{CorpusSource, MemoryCorpus, SearchEngine, SearchRequest, ShardSet};
use xks::datagen::queries::{dblp_workload, xmark_workload};
use xks::datagen::{generate_dblp, generate_xmark, DblpConfig, XmarkConfig, XmarkSize};
use xks::persist::{write_sharded, IndexWriter, PersistError, ShardedCorpus};
use xks::store::{partition, shred, ShreddedDoc};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

struct Corpus {
    name: &'static str,
    doc: ShreddedDoc,
    workload: Vec<(&'static str, String)>,
}

fn corpora() -> Vec<Corpus> {
    vec![
        Corpus {
            name: "dblp",
            doc: shred(&generate_dblp(&DblpConfig::with_records(1_000, 42))),
            workload: dblp_workload(),
        },
        Corpus {
            name: "xmark",
            doc: shred(&generate_xmark(&XmarkConfig::sized(
                XmarkSize::Standard,
                60,
                42,
            ))),
            workload: xmark_workload(),
        },
    ]
}

fn golden_lines() -> Vec<String> {
    std::fs::read_to_string(GOLDEN)
        .expect("golden digest present")
        .lines()
        .map(str::to_owned)
        .collect()
}

/// Runs one corpus's workload through `engine` and returns its digest
/// lines (same format as the golden file).
fn digest_corpus(engine: &SearchEngine, corpus: &Corpus) -> Vec<String> {
    let source = engine.corpus().expect("sharded engines expose a source");
    let mut lines = Vec::new();
    for (abbrev, keywords) in &corpus.workload {
        let request = SearchRequest::parse(keywords).unwrap();
        for kind in ALGORITHMS {
            let response = engine.execute(&request.clone().algorithm(kind)).unwrap();
            let fragments: Vec<xks::core::Fragment> = response.into_fragments();
            lines.push(digest_line(corpus.name, abbrev, kind, &fragments, source));
        }
    }
    lines
}

fn memory_shard_set(doc: &ShreddedDoc, shards: usize) -> ShardSet {
    let parts = partition(doc, shards);
    let first_docs: Vec<u32> = parts.iter().map(|p| p.first_doc).collect();
    let sources: Vec<Arc<dyn CorpusSource>> = parts
        .into_iter()
        .map(|p| Arc::new(MemoryCorpus::new(p.doc)) as Arc<dyn CorpusSource>)
        .collect();
    ShardSet::new(sources, first_docs).unwrap()
}

fn sharded_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("xks-sharded-differential")
        .join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn sharded_backends_reproduce_the_golden_digest() {
    let golden = golden_lines();
    let corpora = corpora();
    assert_eq!(golden.len(), 43 * 3, "golden digest covers the workload");

    for &shards in &SHARD_COUNTS {
        let mut engines: Vec<(String, Vec<SearchEngine>)> = Vec::new();
        for corpus in &corpora {
            let mut variants = Vec::new();

            // Memory shards, scatter-gather (fan-out 2 exercises the
            // worker path even on a 1-core runner).
            variants.push(
                SearchEngine::from_shard_set(memory_shard_set(&corpus.doc, shards))
                    .with_scatter_threads(2),
            );

            // Disk shards via the manifest, scatter-gather…
            let manifest = sharded_dir(&format!("{}-{shards}", corpus.name)).join("corpus.xksm");
            write_sharded(&IndexWriter::new(), &corpus.doc, &manifest, shards).unwrap();
            let opened = ShardedCorpus::open(&manifest).unwrap();
            assert_eq!(opened.shard_count(), shards, "{}", corpus.name);
            variants.push(SearchEngine::from_shard_set(opened.shard_set()).with_scatter_threads(2));

            // …and the same opened corpus as a serial routed source.
            variants.push(SearchEngine::from_source(Arc::new(opened)));

            engines.push((corpus.name.to_owned(), variants));
        }

        for (variant, label) in [
            (0, "memory/scatter"),
            (1, "disk/scatter"),
            (2, "disk/routed"),
        ] {
            let mut lines = Vec::new();
            for ((_, variants), corpus) in engines.iter().zip(&corpora) {
                lines.extend(digest_corpus(&variants[variant], corpus));
            }
            assert_eq!(
                lines.len(),
                golden.len(),
                "{label} with {shards} shard(s): line count"
            );
            for (i, (got, want)) in lines.iter().zip(&golden).enumerate() {
                assert_eq!(
                    got, want,
                    "{label} with {shards} shard(s): digest line {i} diverged"
                );
            }
        }
    }
}

#[test]
fn corrupted_manifest_fails_open_with_typed_errors() {
    let corpus = shred(&generate_dblp(&DblpConfig::with_records(50, 7)));
    let dir = sharded_dir("corrupt");
    let manifest_path = dir.join("corpus.xksm");
    write_sharded(&IndexWriter::new(), &corpus, &manifest_path, 2).unwrap();
    let clean = std::fs::read(&manifest_path).unwrap();

    // A bit flip anywhere in the manifest is caught at open.
    for i in (0..clean.len()).step_by(7) {
        let mut bytes = clean.clone();
        bytes[i] ^= 0x10;
        std::fs::write(&manifest_path, &bytes).unwrap();
        let err = ShardedCorpus::open(&manifest_path).unwrap_err();
        assert!(
            matches!(
                err,
                PersistError::BadMagic { .. }
                    | PersistError::UnsupportedVersion { .. }
                    | PersistError::ChecksumMismatch { .. }
                    | PersistError::Truncated { .. }
                    | PersistError::Corrupt { .. }
            ),
            "flip at byte {i}: {err}"
        );
    }

    // Restore the manifest, then corrupt one shard file: the engine's
    // execute path must surface a typed SearchError, not panic.
    std::fs::write(&manifest_path, &clean).unwrap();
    let corpus = ShardedCorpus::open(&manifest_path).unwrap();
    let shard_file = dir.join(&corpus.manifest().shards[1].file_name);
    let engine = SearchEngine::from_shard_set(corpus.shard_set()).with_scatter_threads(2);
    let ok = engine
        .execute(&SearchRequest::parse("data algorithm").unwrap())
        .unwrap();
    assert!(!ok.hits.is_empty(), "healthy corpus answers");
    // Truncate the live shard under the open engine.
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&shard_file)
        .unwrap();
    file.set_len(4096).unwrap();
    drop(file);
    let fresh = ShardedCorpus::open(&manifest_path);
    assert!(fresh.is_err(), "reopen catches the truncated shard");
}
