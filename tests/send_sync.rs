//! Compile-time proof of the concurrency contract: the shared
//! immutable half of the read path (index handles on every backend,
//! the engine, the executor's inputs/outputs) is `Send + Sync`, and
//! the per-thread mutable half (`QueryContext`) is `Send`.
//!
//! These are `static_assertions`-style checks: if any type loses the
//! bound (say, a `RefCell` sneaks back into a cache), this file stops
//! compiling — no test needs to run.

use std::sync::Arc;

use xks::core::engine::{SearchEngine, SearchResult};
use xks::core::executor::BatchStats;
use xks::core::{CorpusSource, MemoryCorpus, QueryContext};
use xks::persist::pool::BufferPool;
use xks::persist::IndexReader;

const fn assert_send_sync<T: Send + Sync + ?Sized>() {}
const fn assert_send<T: Send + ?Sized>() {}

// Evaluated at compile time — the test body just forces monomorphization.
const _: () = {
    // Index handles: both CorpusSource backends, the trait object, and
    // the storage substrate under the disk backend.
    assert_send_sync::<MemoryCorpus>();
    assert_send_sync::<IndexReader>();
    assert_send_sync::<Arc<dyn CorpusSource>>();
    assert_send_sync::<dyn CorpusSource>();
    assert_send_sync::<BufferPool>();

    // The engine itself (both constructors produce the same type), and
    // what the executor moves across threads.
    assert_send_sync::<SearchEngine>();
    assert_send::<SearchResult>();
    assert_send::<BatchStats>();

    // The per-thread half only needs Send (it is never shared).
    assert_send::<QueryContext>();
};

#[test]
fn send_sync_contract_holds() {
    // The const block above is the real assertion; this test exists so
    // the contract shows up in test output by name.
}
