//! Golden-digest pin of the 43-query Figure 5/6 workload.
//!
//! `tests/golden/workload_digest.txt` records, for every
//! (corpus, query, algorithm) triple, the fragment count and an FNV-1a
//! digest of the rendered fragments — captured **before** the
//! zero-allocation Dewey/postings rewrite. This test re-runs the whole
//! workload and compares line by line, proving the rewrite is
//! byte-identical on real query traffic (the memory/disk differential
//! in `persist_differential.rs` separately proves backend equality).
//!
//! Regenerate deliberately with `XKS_BLESS_GOLDEN=1 cargo test -q
//! --test workload_golden` after a change that is *supposed* to alter
//! results.

mod common;

use common::{digest_line, ALGORITHMS, GOLDEN};
use xks::core::{MemoryCorpus, SearchEngine, SearchRequest};
use xks::datagen::queries::{dblp_workload, xmark_workload};
use xks::datagen::{generate_dblp, generate_xmark, DblpConfig, XmarkConfig, XmarkSize};
use xks::store::shred;

fn digest_lines(traced: bool) -> Vec<String> {
    let mut lines = Vec::new();
    for (corpus, tree, workload) in [
        (
            "dblp",
            generate_dblp(&DblpConfig::with_records(1_000, 42)),
            dblp_workload(),
        ),
        (
            "xmark",
            generate_xmark(&XmarkConfig::sized(XmarkSize::Standard, 60, 42)),
            xmark_workload(),
        ),
    ] {
        let engine = SearchEngine::from_owned_source(MemoryCorpus::new(shred(&tree)));
        let source = engine.corpus().expect("source-backed engine");
        for (abbrev, keywords) in &workload {
            // The 43-query workload replays through the redesigned
            // request/response path; the digest must not move.
            let request = SearchRequest::parse(keywords).unwrap().trace(traced);
            for kind in ALGORITHMS {
                let response = engine.execute(&request.clone().algorithm(kind)).unwrap();
                if traced {
                    let trace = response.trace.as_ref().expect("traced response");
                    assert!(
                        !trace.spans().is_empty(),
                        "{corpus}/{abbrev}: traced replay must record spans"
                    );
                } else {
                    assert!(response.trace.is_none(), "untraced response has no trace");
                }
                let fragments: Vec<xks::core::Fragment> = response.into_fragments();
                lines.push(digest_line(corpus, abbrev, kind, &fragments, source));
            }
        }
    }
    lines
}

fn assert_matches_golden(lines: Vec<String>, bless: bool) {
    assert_eq!(lines.len(), 43 * 3, "43 workload queries x 3 algorithms");
    let rendered = lines.join("\n") + "\n";

    if bless {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN, &rendered).unwrap();
        eprintln!("blessed {GOLDEN}");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden digest missing; run with XKS_BLESS_GOLDEN=1 to record it");
    for (i, (got, want)) in rendered.lines().zip(golden.lines()).enumerate() {
        assert_eq!(got, want, "digest line {i} diverged from the golden file");
    }
    assert_eq!(
        rendered.lines().count(),
        golden.lines().count(),
        "digest line count diverged from the golden file"
    );
}

#[test]
fn workload_results_match_golden_digest() {
    assert_matches_golden(
        digest_lines(false),
        std::env::var("XKS_BLESS_GOLDEN").is_ok(),
    );
}

/// Replaying the identical workload with stage tracing enabled must not
/// move a single digest byte: tracing only *observes* the pipeline
/// (spans ride in preallocated context storage), it never reorders or
/// filters results. Never blesses — the untraced test owns the file.
#[test]
fn traced_workload_replay_is_byte_identical() {
    if std::env::var("XKS_BLESS_GOLDEN").is_ok() {
        return; // the untraced test is re-recording the golden file
    }
    assert_matches_golden(digest_lines(true), false);
}
