//! Determinism pin for the workload matrix: the same [`ScenarioSpec`]
//! must expand to a byte-identical corpus and query set every time —
//! otherwise the committed `BENCH_matrix.json`, the matrix golden
//! digest, and any cross-machine comparison are meaningless.
//!
//! `cargo test` checks the smoke cells (scale 1, every shape/skew/
//! tenancy); the full 12-cell grid — including the 6000-record
//! scale-100 corners — runs under `XKS_FULL_MATRIX=1`, mirroring the
//! crash-matrix lane's env-gated full sweep.

use xks::datagen::scenario::{Scenario, ScenarioSpec};
use xks::xmltree::writer::to_xml_compact;

fn specs_under_test() -> Vec<ScenarioSpec> {
    if std::env::var_os("XKS_FULL_MATRIX").is_some() {
        ScenarioSpec::matrix()
    } else {
        ScenarioSpec::smoke()
    }
}

fn queries_blob(scenario: &Scenario) -> String {
    scenario
        .queries
        .iter()
        .map(|q| format!("{}\t{}\n", q.class.name(), q.text))
        .collect()
}

/// Same spec, two expansions → byte-identical XML and query set.
#[test]
fn same_seed_is_byte_identical() {
    for spec in specs_under_test() {
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(
            to_xml_compact(&a.tree),
            to_xml_compact(&b.tree),
            "{}: corpus XML diverged between generations",
            spec.name()
        );
        assert_eq!(
            queries_blob(&a),
            queries_blob(&b),
            "{}: query set diverged between generations",
            spec.name()
        );
    }
}

/// The structural fingerprint (labels, deweys, text) agrees too — the
/// XML writer cannot mask a tree-level divergence.
#[test]
fn same_seed_has_identical_fingerprint() {
    for spec in specs_under_test() {
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(
            a.tree.fingerprint(),
            b.tree.fingerprint(),
            "{}: tree fingerprint diverged",
            spec.name()
        );
    }
}

/// A different seed must actually change the corpus (the seed is
/// load-bearing, not decorative).
#[test]
fn different_seed_changes_the_corpus() {
    let base = ScenarioSpec::parse("s1-flat-zipf-single").expect("known cell");
    let reseeded = ScenarioSpec {
        seed: base.seed ^ 1,
        ..base
    };
    assert_ne!(
        to_xml_compact(&base.generate().tree),
        to_xml_compact(&reseeded.generate().tree),
    );
}
