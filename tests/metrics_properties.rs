//! Property tests for the §5.1 effectiveness metrics.

use proptest::prelude::*;
use xks::core::prune::{prune, Policy};
use xks::core::{effectiveness, get_rtf, Fragment};
use xks::datagen::random_tree::{random_document, word, RandomDocConfig};
use xks::index::{InvertedIndex, Query};
use xks::lca::elca_stack;

fn fragment_pairs(nodes: usize, labels: usize, seed: u64, k: usize) -> Vec<(Fragment, Fragment)> {
    let tree = random_document(&RandomDocConfig {
        nodes,
        labels,
        words: 4,
        max_words_per_node: 2,
        seed,
    });
    let index = InvertedIndex::build(&tree);
    let keywords: Vec<String> = (0..k).map(word).collect();
    let query = Query::from_words(&keywords).expect("non-empty");
    let Some(sets) = index.resolve(&query) else {
        return Vec::new();
    };
    let anchors = elca_stack(sets.sets());
    get_rtf(&anchors, &sets)
        .iter()
        .map(|r| {
            let raw = Fragment::construct(&tree, r);
            (
                prune(&raw, Policy::ValidContributor),
                prune(&raw, Policy::Contributor),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ratios_are_bounded(
        nodes in 2usize..40,
        labels in 1usize..4,
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        let pairs = fragment_pairs(nodes, labels, seed, k);
        let eff = effectiveness(&pairs);
        prop_assert!((0.0..=1.0).contains(&eff.cfr), "cfr {}", eff.cfr);
        prop_assert!((0.0..=1.0).contains(&eff.apr), "apr {}", eff.apr);
        prop_assert!((0.0..=1.0).contains(&eff.apr_prime), "apr' {}", eff.apr_prime);
        prop_assert!((0.0..=1.0).contains(&eff.max_apr), "max {}", eff.max_apr);
        prop_assert!(eff.common_count <= eff.rtf_count);
    }

    #[test]
    fn cfr_one_implies_no_pruning_ratio(
        nodes in 2usize..40,
        labels in 1usize..4,
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        let pairs = fragment_pairs(nodes, labels, seed, k);
        let eff = effectiveness(&pairs);
        if eff.cfr == 1.0 {
            prop_assert_eq!(eff.apr, 0.0);
            prop_assert_eq!(eff.max_apr, 0.0);
        }
        // And the converse relation: a positive Max APR requires some
        // differing fragment.
        if eff.max_apr > 0.0 {
            prop_assert!(eff.cfr < 1.0);
        }
    }

    #[test]
    fn apr_prime_never_exceeds_apr_with_two_plus_diffs(
        nodes in 2usize..40,
        labels in 1usize..4,
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        // Removing the maximum from an average cannot increase it.
        let pairs = fragment_pairs(nodes, labels, seed, k);
        let eff = effectiveness(&pairs);
        let differing = eff.rtf_count - eff.common_count;
        if differing > 1 {
            prop_assert!(
                eff.apr_prime <= eff.apr + 1e-12,
                "apr' {} > apr {}",
                eff.apr_prime,
                eff.apr
            );
        }
    }
}
