//! Concurrent differential test: N threads share ONE engine (one
//! corpus, one buffer pool, one set of caches) and each runs the full
//! 43-query Figure 5/6 workload × 3 algorithms independently with its
//! own `QueryContext`. Every thread's digest must match the golden
//! digest in `tests/golden/workload_digest.txt` **byte for byte**, on
//! both the memory and the disk backend — proving the `Send + Sync`
//! refactor changed concurrency, not results, and that no interleaving
//! of pool/cache traffic can corrupt a query.
//!
//! Thread count defaults to 4; CI raises it via the
//! `XKS_CONCURRENT_THREADS` env var to shake the locks harder.

mod common;

use std::sync::Arc;

use common::{digest_line, ALGORITHMS, GOLDEN};
use xks::core::{CorpusSource, MemoryCorpus, QueryContext, SearchEngine, SearchRequest};
use xks::datagen::queries::{dblp_workload, xmark_workload};
use xks::datagen::{generate_dblp, generate_xmark, DblpConfig, XmarkConfig, XmarkSize};
use xks::persist::{IndexReader, IndexWriter};
use xks::store::shred;

fn thread_count() -> usize {
    std::env::var("XKS_CONCURRENT_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// One thread's full pass over one corpus' workload: every query × all
/// three algorithms through `execute_with` and a private context,
/// digested exactly like `tests/workload_golden.rs` digests them (the
/// line format is shared via `tests/common`).
fn digest_corpus(
    corpus: &str,
    engine: &SearchEngine,
    workload: &[(&'static str, String)],
) -> Vec<String> {
    let source = engine.corpus().expect("source-backed engine");
    let mut ctx = QueryContext::new();
    let mut lines = Vec::new();
    for (abbrev, keywords) in workload {
        let request = SearchRequest::parse(keywords).unwrap();
        for kind in ALGORITHMS {
            let response = engine
                .execute_with(&request.clone().algorithm(kind), &mut ctx)
                .unwrap();
            let fragments: Vec<xks::core::Fragment> = response.into_fragments();
            lines.push(digest_line(corpus, abbrev, kind, &fragments, source));
        }
    }
    lines
}

/// One corpus ready to query: name, shared engine, workload queries.
type CorpusUnderTest = (&'static str, SearchEngine, Vec<(&'static str, String)>);

/// Runs the differential over a backend builder: every thread digests
/// the whole workload against the SAME two engines and must reproduce
/// the golden file exactly.
fn run_backend(make_engine: impl Fn(xks::store::ShreddedDoc, &str) -> SearchEngine) {
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden digest missing; bless it via tests/workload_golden.rs");
    let threads = thread_count();

    let corpora = [
        (
            "dblp",
            shred(&generate_dblp(&DblpConfig::with_records(1_000, 42))),
            dblp_workload(),
        ),
        (
            "xmark",
            shred(&generate_xmark(&XmarkConfig::sized(
                XmarkSize::Standard,
                60,
                42,
            ))),
            xmark_workload(),
        ),
    ];
    let engines: Vec<CorpusUnderTest> = corpora
        .into_iter()
        .map(|(name, doc, workload)| (name, make_engine(doc, name), workload))
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let engines = &engines;
                scope.spawn(move || {
                    let mut lines = Vec::new();
                    for (name, engine, workload) in engines {
                        lines.extend(digest_corpus(name, engine, workload));
                    }
                    lines.join("\n") + "\n"
                })
            })
            .collect();
        for (t, handle) in handles.into_iter().enumerate() {
            let rendered = handle.join().expect("digest thread panicked");
            assert_eq!(
                rendered, golden,
                "thread {t}/{threads} diverged from the golden digest"
            );
        }
    });
}

#[test]
fn concurrent_threads_reproduce_golden_digest_memory() {
    run_backend(|doc, _| SearchEngine::from_owned_source(MemoryCorpus::new(doc)));
}

#[test]
fn concurrent_threads_reproduce_golden_digest_disk() {
    let dir = std::env::temp_dir().join("xks-concurrent-differential");
    std::fs::create_dir_all(&dir).unwrap();
    run_backend(|doc, name| {
        let path = dir.join(format!("{name}.xks"));
        IndexWriter::new().write(&doc, &path).unwrap();
        SearchEngine::from_owned_source(IndexReader::open(&path).unwrap())
    });
}

#[test]
fn one_shared_reader_backs_engines_on_many_threads() {
    // The index-handle pattern end to end: ONE opened .xks file (one
    // pool, one postings cache) behind an Arc, a separate engine per
    // thread on top of it.
    let dir = std::env::temp_dir().join("xks-concurrent-differential");
    std::fs::create_dir_all(&dir).unwrap();
    let doc = shred(&generate_dblp(&DblpConfig::with_records(1_000, 42)));
    let path = dir.join("shared-handle.xks");
    IndexWriter::new().write(&doc, &path).unwrap();
    let reader: Arc<IndexReader> = Arc::new(IndexReader::open(&path).unwrap());

    let workload = dblp_workload();
    let baseline = {
        let engine = SearchEngine::from_source(Arc::clone(&reader) as Arc<dyn CorpusSource>);
        digest_corpus("dblp", &engine, &workload)
    };
    std::thread::scope(|scope| {
        for _ in 0..thread_count() {
            let reader = Arc::clone(&reader);
            let workload = &workload;
            let baseline = &baseline;
            scope.spawn(move || {
                let engine = SearchEngine::from_source(reader as Arc<dyn CorpusSource>);
                assert_eq!(&digest_corpus("dblp", &engine, workload), baseline);
            });
        }
    });
    let stats = reader.stats();
    assert!(
        stats.postings_cache_hits > 0,
        "threads must share the one postings cache"
    );
}
