//! `SearchEngine::execute` must surface backend failures as typed
//! [`SearchError`]s — never a panic — even when the storage under an
//! already-opened index dies (the "disk failed after open" scenario a
//! server lives with).

use xks::core::{SearchEngine, SearchError, SearchRequest};
use xks::datagen::{generate_dblp, DblpConfig};
use xks::persist::{IndexReader, IndexWriter};

#[test]
fn truncated_index_yields_typed_error_not_panic() {
    let dir = std::env::temp_dir().join("xks-execute-errors");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dying.xks");
    // A multi-page index, so a fresh keyword's pages cannot all be
    // sitting in the buffer pool when the file dies.
    IndexWriter::new()
        .write_tree(&generate_dblp(&DblpConfig::with_records(500, 42)), &path)
        .unwrap();

    // Open succeeds against the intact file…
    let engine = SearchEngine::from_owned_source(IndexReader::open(&path).unwrap());
    let request = SearchRequest::parse("data").unwrap();
    assert!(
        !engine.execute(&request).unwrap().hits.is_empty(),
        "sanity: the intact index answers"
    );

    // …then the file is truncated to almost nothing behind the
    // reader's back (same inode — the reader keeps its handle).
    let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    file.set_len(64).unwrap();
    drop(file);

    // A query for keywords whose pages are not cached yet must fail
    // with a typed backend error, not a panic.
    let fresh = SearchRequest::parse("algorithm query tree").unwrap();
    match engine.execute(&fresh) {
        Err(SearchError::Backend(e)) => {
            let text = e.to_string();
            assert!(!text.is_empty());
        }
        Ok(response) => panic!(
            "query over a truncated index must fail (got {} hits)",
            response.hits.len()
        ),
        Err(other) => panic!("expected a backend error, got {other}"),
    }

    // The engine object stays usable as an object (no poisoned state):
    // further queries keep returning typed errors.
    assert!(matches!(
        engine.execute(&fresh),
        Err(SearchError::Backend(_)) | Ok(_)
    ));
    std::fs::remove_file(&path).unwrap();
}
