//! Differential test of §4.3 analysis claim (1): the `getLCA → getRTF`
//! pipeline retrieves exactly the RTFs characterized by Definitions 1–2.
//!
//! The executable specification (`validrtf::spec`) enumerates `ECT_Q`
//! and filters it by the three RTF conditions — exponential, so inputs
//! are kept tiny; the pipeline must agree on anchors *and* keyword-node
//! partitions for every random document and query.

use proptest::prelude::*;
use xks::core::spec::spec_rtfs;
use xks::core::{get_rtf, Rtf};
use xks::datagen::random_tree::{random_document, word, RandomDocConfig};
use xks::index::{InvertedIndex, Query};
use xks::lca::elca_stack;
use xks::xmltree::Dewey;

fn pipeline_rtfs(sets: &xks::index::KeywordNodeSets) -> Vec<Rtf> {
    let anchors = elca_stack(sets.sets());
    get_rtf(&anchors, sets)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn get_rtf_matches_definition_2(
        nodes in 2usize..14,
        labels in 1usize..4,
        words in 2usize..5,
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        let tree = random_document(&RandomDocConfig {
            nodes,
            labels,
            words,
            max_words_per_node: 2,
            seed,
        });
        let index = InvertedIndex::build(&tree);
        let keywords: Vec<String> = (0..k).map(word).collect();
        let query = Query::from_words(&keywords).expect("non-empty");
        let Some(sets) = index.resolve(&query) else {
            // Some keyword absent: both sides must return nothing.
            prop_assert!(spec_rtfs(&[]).expect("empty ok").is_empty());
            return Ok(());
        };
        // Keep the enumeration tractable.
        prop_assume!(sets.sets().iter().all(|s| s.len() <= 5));

        let Some(spec) = spec_rtfs(sets.sets()) else {
            return Ok(()); // oversized, skipped
        };
        let got = pipeline_rtfs(&sets);

        let got_view: Vec<(&Dewey, Vec<&Dewey>)> = got
            .iter()
            .map(|r| (&r.anchor, r.knodes.iter().map(|(d, _)| d).collect()))
            .collect();
        let want_view: Vec<(&Dewey, Vec<&Dewey>)> = spec
            .iter()
            .map(|s| (&s.anchor, s.nodes.iter().collect()))
            .collect();
        prop_assert_eq!(
            got_view,
            want_view,
            "pipeline vs Definition 2 on tree:\n{}",
            tree
        );
    }

    #[test]
    fn rtf_partitions_are_disjoint_and_covering(
        nodes in 2usize..30,
        labels in 1usize..4,
        words in 2usize..5,
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        // Requirements (2)/(3) of §2: partitions are pairwise disjoint,
        // and each covers the whole query.
        let tree = random_document(&RandomDocConfig {
            nodes,
            labels,
            words,
            max_words_per_node: 2,
            seed,
        });
        let index = InvertedIndex::build(&tree);
        let keywords: Vec<String> = (0..k).map(word).collect();
        let query = Query::from_words(&keywords).expect("non-empty");
        let Some(sets) = index.resolve(&query) else { return Ok(()); };

        let rtfs = pipeline_rtfs(&sets);
        let mut seen: Vec<&Dewey> = Vec::new();
        for r in &rtfs {
            prop_assert!(
                r.keyword_union().covers_query(k),
                "partition at {} does not cover the query",
                r.anchor
            );
            for (d, _) in &r.knodes {
                prop_assert!(!seen.contains(&d), "keyword node {} in two partitions", d);
                seen.push(d);
            }
            // Anchor is the LCA of its partition (uniqueness requirement).
            let deweys: Vec<Dewey> = r.keyword_deweys();
            prop_assert_eq!(Dewey::lca_of_all(&deweys).unwrap(), r.anchor.clone());
        }
    }
}
