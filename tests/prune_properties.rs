//! Property tests for the pruning step: structural invariants plus the
//! Definition 4 postconditions, on random documents.

use proptest::prelude::*;
use xks::core::prune::{prune, Policy};
use xks::core::{get_rtf, Fragment};
use xks::datagen::random_tree::{random_document, word, RandomDocConfig};
use xks::index::{InvertedIndex, Query};
use xks::lca::elca_stack;
use xks::xmltree::XmlTree;

fn raw_fragments(tree: &XmlTree, k: usize) -> Vec<Fragment> {
    let index = InvertedIndex::build(tree);
    let keywords: Vec<String> = (0..k).map(word).collect();
    let query = Query::from_words(&keywords).expect("non-empty");
    let Some(sets) = index.resolve(&query) else {
        return Vec::new();
    };
    let anchors = elca_stack(sets.sets());
    get_rtf(&anchors, &sets)
        .iter()
        .map(|r| Fragment::construct(tree, r))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pruning_structural_invariants(
        nodes in 2usize..50,
        labels in 1usize..4,
        words in 2usize..5,
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        let tree = random_document(&RandomDocConfig {
            nodes, labels, words, max_words_per_node: 2, seed,
        });
        for raw in raw_fragments(&tree, k) {
            for policy in [Policy::ValidContributor, Policy::Contributor] {
                let pruned = prune(&raw, policy);
                // Subset of the raw fragment, anchor retained.
                prop_assert!(pruned.contains(&raw.anchor));
                prop_assert!(pruned.len() <= raw.len());
                for n in pruned.iter() {
                    prop_assert!(raw.contains(&n.dewey), "{} not in raw", n.dewey);
                    // Connectivity: parent of every non-anchor node kept.
                    if n.dewey != pruned.anchor {
                        let parent = n.dewey.parent().expect("non-anchor has parent");
                        prop_assert!(pruned.contains(&parent), "orphan {}", n.dewey);
                    }
                    // Children links point at kept nodes only.
                    for c in &n.children {
                        prop_assert!(pruned.contains(c));
                    }
                }
            }
        }
    }

    #[test]
    fn valid_contributor_postconditions(
        nodes in 2usize..50,
        labels in 1usize..4,
        words in 2usize..5,
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        // Definition 4 on the *output*: among kept same-label siblings,
        // no strict keyword-set subset and no (equal kset, equal cID)
        // duplicate pair.
        let tree = random_document(&RandomDocConfig {
            nodes, labels, words, max_words_per_node: 2, seed,
        });
        for raw in raw_fragments(&tree, k) {
            let pruned = prune(&raw, Policy::ValidContributor);
            for n in pruned.iter() {
                for group in pruned.label_groups(&n.dewey) {
                    let children = &group.children;
                    for a in children {
                        for b in children {
                            if a.dewey == b.dewey {
                                continue;
                            }
                            prop_assert!(
                                !a.kset.is_strict_subset(b.kset),
                                "kept child {} strictly covered by kept sibling {}",
                                a.dewey,
                                b.dewey
                            );
                            prop_assert!(
                                !(a.kset == b.kset && a.cid == b.cid),
                                "kept duplicates {} / {}",
                                a.dewey,
                                b.dewey
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn contributor_postconditions(
        nodes in 2usize..50,
        labels in 1usize..4,
        words in 2usize..5,
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        // MaxMatch's postcondition: among *all* kept siblings (any
        // label), no strict keyword-set subset pair.
        let tree = random_document(&RandomDocConfig {
            nodes, labels, words, max_words_per_node: 2, seed,
        });
        for raw in raw_fragments(&tree, k) {
            let pruned = prune(&raw, Policy::Contributor);
            for n in pruned.iter() {
                let children: Vec<_> = n
                    .children
                    .iter()
                    .map(|c| pruned.node(c).expect("kept child"))
                    .collect();
                for a in &children {
                    for b in &children {
                        prop_assert!(
                            a.dewey == b.dewey || !a.kset.is_strict_subset(b.kset),
                            "kept child {} strictly covered by kept sibling {}",
                            a.dewey,
                            b.dewey
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn valid_contributor_keeps_unique_labels(
        nodes in 2usize..50,
        words in 2usize..5,
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        // Rule 1: when all children of a node have distinct labels,
        // ValidRTF prunes nothing below that node (only whole subtrees
        // pruned higher up can remove them).
        let tree = random_document(&RandomDocConfig {
            // Large label alphabet → most sibling labels distinct.
            nodes, labels: 64, words, max_words_per_node: 2, seed,
        });
        for raw in raw_fragments(&tree, k) {
            let pruned = prune(&raw, Policy::ValidContributor);
            // All raw groups have counter 1 (labels unique with high
            // probability — verify, skip otherwise).
            let all_unique = raw.iter().all(|n| {
                raw.label_groups(&n.dewey)
                    .iter()
                    .all(|g| g.counter() == 1)
            });
            prop_assume!(all_unique);
            prop_assert_eq!(pruned.len(), raw.len(), "rule 1 must keep everything");
        }
    }
}
