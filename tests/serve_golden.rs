//! The server-vs-CLI differential, proven over real sockets on the
//! full 43-query golden workload.
//!
//! `POST /search` and `xks search --format json` both render through
//! `xks::core::wire::response_json`, so they are byte-identical by
//! construction — this test closes the loop empirically: for every
//! (corpus, query, algorithm) triple the bytes that come back over a
//! TCP socket must equal the bytes rendered locally from the *same*
//! engine state, modulo the wall-clock `timings_us` block. The local
//! execution is separately pinned to `tests/golden/workload_digest.txt`,
//! so by transitivity the server's results match the golden digest.
//! Both backends are covered: memory-built and sharded-on-disk.

mod common;

use std::path::PathBuf;
use std::sync::Arc;

use common::{digest_line, ALGORITHMS, GOLDEN};
use xks::core::wire;
use xks::core::{MemoryCorpus, SearchEngine, SearchRequest};
use xks::datagen::queries::{dblp_workload, xmark_workload};
use xks::datagen::{generate_dblp, generate_xmark, DblpConfig, XmarkConfig, XmarkSize};
use xks::persist::{write_sharded, IndexWriter, ShardedCorpus};
use xks::serve::{client, Server, ServerConfig};
use xks::store::json::{self, Value};
use xks::store::shred;
use xks::xmltree::XmlTree;

type Workload = Vec<(&'static str, String)>;

fn workloads() -> [(&'static str, XmlTree, Workload); 2] {
    [
        (
            "dblp",
            generate_dblp(&DblpConfig::with_records(1_000, 42)),
            dblp_workload(),
        ),
        (
            "xmark",
            generate_xmark(&XmarkConfig::sized(XmarkSize::Standard, 60, 42)),
            xmark_workload(),
        ),
    ]
}

/// Drops the wall-clock fields (`timings_us`, and the span timings
/// inside `trace`) — everything else must match to the byte.
fn strip_wallclock(value: &mut Value) {
    if let Value::Obj(fields) = value {
        fields.remove("timings_us");
        fields.remove("trace");
    }
}

/// Renders a response object with wall-clock fields removed.
fn comparable(text: &str) -> String {
    let mut value = json::parse(text).expect("valid response JSON");
    strip_wallclock(&mut value);
    json::to_string(&value)
}

fn start_server(
    engine: SearchEngine,
) -> (
    std::net::SocketAddr,
    xks::serve::ShutdownHandle,
    std::thread::JoinHandle<()>,
) {
    let server = Server::bind(engine, ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let thread = std::thread::spawn(move || {
        let report = server.run().expect("server run");
        assert!(report.drained_cleanly, "golden server must drain cleanly");
    });
    (addr, shutdown, thread)
}

/// Replays the workload against `local` (rendering through the wire
/// module) and the server at `addr` (over a socket); every pair must
/// match byte-for-byte after the wall-clock strip. Returns the local
/// digest lines for the golden cross-check.
fn differential_sweep(
    corpus: &str,
    workload: &[(&str, String)],
    local: &SearchEngine,
    addr: std::net::SocketAddr,
) -> Vec<String> {
    let source = local.corpus().expect("source-backed engine");
    let mut lines = Vec::new();
    for (abbrev, keywords) in workload {
        for kind in ALGORITHMS {
            let request = SearchRequest::parse(keywords)
                .expect("workload query parses")
                .algorithm(kind);
            let response = local.execute(&request).expect("local execution");
            let local_json =
                json::to_string(&wire::response_json(local, &request, &response, usize::MAX));

            let body = json::to_string(&Value::Obj(wire::obj([
                ("query", Value::Str(keywords.clone())),
                (
                    "algorithm",
                    Value::Str(wire::algorithm_name(kind).to_owned()),
                ),
            ])));
            let over_socket =
                client::request(addr, "POST", "/search", body.as_bytes()).expect("socket request");
            assert_eq!(
                over_socket.status,
                200,
                "{corpus}/{abbrev}/{kind:?}: {}",
                over_socket.text()
            );
            assert_eq!(
                comparable(over_socket.text()),
                comparable(&local_json),
                "{corpus}/{abbrev}/{kind:?}: socket bytes diverged from local render"
            );

            let fragments: Vec<xks::core::Fragment> = response.into_fragments();
            lines.push(digest_line(corpus, abbrev, kind, &fragments, source));
        }
    }
    lines
}

/// Asserts the local side of the differential reproduces the golden
/// digest file — the transitive anchor: socket ≡ local ≡ golden.
fn assert_golden(lines: &[String]) {
    assert_eq!(lines.len(), 43 * 3, "43 workload queries x 3 algorithms");
    let golden = std::fs::read_to_string(GOLDEN).expect("golden digest file");
    for (i, (got, want)) in lines
        .iter()
        .map(String::as_str)
        .zip(golden.lines())
        .enumerate()
    {
        assert_eq!(got, want, "digest line {i} diverged from the golden file");
    }
}

#[test]
fn server_matches_cli_render_on_memory_backend() {
    let mut all_lines = Vec::new();
    for (corpus, tree, workload) in workloads() {
        // One shared source, two engines: the server's and the local
        // renderer's state cannot drift apart.
        let source = Arc::new(MemoryCorpus::new(shred(&tree)));
        let local = SearchEngine::from_source(Arc::clone(&source) as _);
        let (addr, shutdown, thread) =
            start_server(SearchEngine::from_source(Arc::clone(&source) as _));
        all_lines.extend(differential_sweep(corpus, &workload, &local, addr));
        shutdown.shutdown();
        thread.join().unwrap();
    }
    assert_golden(&all_lines);
}

#[test]
fn server_matches_cli_render_on_sharded_disk_backend() {
    let dir = std::env::temp_dir().join("xks-serve-golden");
    std::fs::create_dir_all(&dir).unwrap();
    let mut all_lines = Vec::new();
    for (corpus, tree, workload) in workloads() {
        let manifest: PathBuf = dir.join(format!("{corpus}.xksm"));
        write_sharded(&IndexWriter::new(), &shred(&tree), &manifest, 3)
            .expect("write sharded index");
        let sharded = ShardedCorpus::open(&manifest).expect("open sharded index");
        let local = SearchEngine::from_shard_set(sharded.shard_set());
        let (addr, shutdown, thread) =
            start_server(SearchEngine::from_shard_set(sharded.shard_set()));
        all_lines.extend(differential_sweep(corpus, &workload, &local, addr));
        shutdown.shutdown();
        thread.join().unwrap();
    }
    assert_golden(&all_lines);
}
