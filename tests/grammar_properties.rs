//! Property tests of the query operator grammar.
//!
//! Three contracts:
//!
//! 1. **No panic**: `QuerySpec::parse` over arbitrary input (including
//!    control characters and non-ASCII planes) returns `Ok` or a typed
//!    `ParseError`, never panics;
//! 2. **Round-trip**: a parsed spec re-parses from its own `Display`
//!    rendering to an equal spec with an identical rendering, and the
//!    second parse is fully canonical (nothing left to normalize);
//! 3. **Plain-query equivalence**: operator-free input lowers to
//!    exactly the `Query` the legacy flat parser produces, and
//!    executing it returns byte-identical fragments through both the
//!    legacy and the request path. (The 43-query golden workload digest
//!    in `tests/workload_golden.rs` pins the same equivalence against
//!    the recorded pre-redesign results at corpus scale.)

use proptest::prelude::*;
use xks::core::{AlgorithmKind, SearchEngine, SearchRequest};
use xks::index::{Query, QuerySpec};
use xks::xmltree::fixtures::publications;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_input_never_panics(text in ".{0,60}") {
        // Ok or typed error — either is fine; a panic fails the test.
        let _ = QuerySpec::parse(&text);
    }

    #[test]
    fn operator_soup_never_panics(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "xml", "Keyword", "search", "\"a b\"", "\"x\"", "-skip",
            "title:xml", "a:b:c", "--x", "-", ":", "\"", "\"\"",
            "-\"a b\"", "label:", ":word", "\"unclosed", "W\u{130}DE",
        ]),
        0..8,
    )) {
        let text = tokens.join(" ");
        if let Ok(spec) = QuerySpec::parse(&text) {
            // Whatever parses must round-trip (property 2 on the
            // operator-dense distribution).
            let rendered = spec.to_string();
            let again = QuerySpec::parse(&rendered)
                .expect("canonical rendering re-parses");
            prop_assert_eq!(&spec, &again);
            prop_assert_eq!(rendered, again.to_string());
            prop_assert!(again.report().is_clean());
        }
    }

    #[test]
    fn parse_display_parse_round_trips(text in ".{1,40}") {
        if let Ok(spec) = QuerySpec::parse(&text) {
            let rendered = spec.to_string();
            let again = QuerySpec::parse(&rendered)
                .expect("canonical rendering re-parses");
            prop_assert_eq!(&spec, &again);
            prop_assert_eq!(rendered, again.to_string());
        }
    }

    #[test]
    fn plain_queries_lower_to_the_legacy_parser(words in prop::collection::vec(
        prop::sample::select(vec![
            "xml", "Keyword", "search", "liu", "VLDB", "skyline", "title",
        ]),
        1..6,
    )) {
        let text = words.join(" ");
        let spec = QuerySpec::parse(&text).expect("plain words parse");
        let legacy = Query::parse(&text).expect("plain words parse");
        prop_assert!(spec.is_plain());
        prop_assert_eq!(spec.query(), &legacy);
    }
}

/// Deterministic end-to-end check of property 3: for every paper query,
/// the legacy `Query` path and the request path return identical
/// fragments on every algorithm.
#[test]
#[allow(deprecated)]
fn plain_requests_match_legacy_search_end_to_end() {
    let engine = SearchEngine::new(publications());
    for text in xks::xmltree::fixtures::PAPER_QUERIES {
        let query = Query::parse(text).unwrap();
        let request = SearchRequest::parse(text).unwrap();
        assert_eq!(request.query(), &query, "{text}");
        for kind in [
            AlgorithmKind::ValidRtf,
            AlgorithmKind::MaxMatchRtf,
            AlgorithmKind::MaxMatchSlca,
        ] {
            let legacy = engine.search(&query, kind);
            let response = engine.execute(&request.clone().algorithm(kind)).unwrap();
            assert_eq!(
                legacy.fragments,
                response.into_fragments(),
                "{text} / {kind:?}"
            );
        }
    }
}
