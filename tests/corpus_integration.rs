//! End-to-end integration over the generated corpora: the full workload
//! pipelines of Figures 5/6 at test scale.

use xks::core::{AlgorithmKind, SearchEngine, SearchRequest};
use xks::datagen::queries::{dblp_workload, xmark_workload};
use xks::datagen::{generate_dblp, generate_xmark, DblpConfig, XmarkConfig, XmarkSize};
use xks::index::Query;

fn dblp_engine() -> SearchEngine {
    SearchEngine::new(generate_dblp(&DblpConfig::with_records(2_000, 42)))
}

fn xmark_engine(size: XmarkSize) -> SearchEngine {
    // 80 base items keeps the workload's pruning profile stable across
    // RNG streams (at 40 the rare-keyword plantings are so sparse that
    // the pruning counts below become seed-sensitive).
    SearchEngine::new(generate_xmark(&XmarkConfig::sized(size, 80, 42)))
}

#[test]
fn dblp_workload_runs_end_to_end() {
    let engine = dblp_engine();
    let mut nonempty = 0;
    for (abbrev, keywords) in dblp_workload() {
        let query = Query::parse(&keywords).unwrap();
        let cmp = engine.compare(&query).unwrap();
        // Anchor sets align, CFR is a valid ratio.
        assert!((0.0..=1.0).contains(&cmp.effectiveness.cfr), "{abbrev}");
        assert!(cmp.effectiveness.max_apr <= 1.0, "{abbrev}");
        if cmp.rtf_count > 0 {
            nonempty += 1;
        }
    }
    // At test scale some rare-keyword queries may be empty, but the bulk
    // must produce results.
    assert!(
        nonempty >= dblp_workload().len() / 2,
        "only {nonempty} non-empty"
    );
}

#[test]
fn dblp_fragments_cover_their_queries() {
    let engine = dblp_engine();
    for (_, keywords) in dblp_workload().into_iter().take(6) {
        let query = Query::parse(&keywords).unwrap();
        let out = engine
            .execute(&SearchRequest::from_query(query.clone()))
            .unwrap();
        for frag in out.fragments() {
            // Every fragment must contain at least one keyword node per
            // query keyword (keyword requirement of §2).
            for kw in query.keywords() {
                let covered = frag.iter().any(|n| {
                    engine
                        .tree()
                        .node_by_dewey(&n.dewey)
                        .map(|id| {
                            xks::xmltree::content::node_content(engine.tree(), id).contains(kw)
                        })
                        .unwrap_or(false)
                });
                assert!(covered, "fragment at {} misses {kw}", frag.anchor);
            }
        }
    }
}

#[test]
fn xmark_standard_workload_runs() {
    let engine = xmark_engine(XmarkSize::Standard);
    let mut with_pruning = 0;
    for (abbrev, keywords) in xmark_workload() {
        let query = Query::parse(&keywords).unwrap();
        let cmp = engine.compare(&query).unwrap();
        assert!((0.0..=1.0).contains(&cmp.effectiveness.cfr), "{abbrev}");
        if cmp.effectiveness.max_apr > 0.0 {
            with_pruning += 1;
        }
    }
    // The paper's XMark profile: ValidRTF prunes beyond MaxMatch on most
    // queries (Figure 6(b): Max APR near 1, APR' > 0).
    assert!(
        with_pruning >= xmark_workload().len() / 2,
        "only {with_pruning} pruned"
    );
}

#[test]
fn xmark_ladder_monotone_in_size() {
    // Bigger datasets → more keyword nodes → at least as many RTFs for
    // the permissive queries.
    let std_engine = xmark_engine(XmarkSize::Standard);
    let d1_engine = xmark_engine(XmarkSize::Data1);
    for (_, keywords) in xmark_workload().into_iter().take(5) {
        let query = Query::parse(&keywords).unwrap();
        let a = std_engine.compare(&query).unwrap().rtf_count;
        let b = d1_engine.compare(&query).unwrap().rtf_count;
        // Not strictly guaranteed per query, but gross inversions would
        // signal a generator bug; allow slack.
        assert!(b * 3 >= a, "rtf count collapsed: {a} → {b}");
    }
}

#[test]
fn valid_rtf_and_maxmatch_runtime_same_order() {
    // §4.3 claim (4): competent performance. At integration-test scale
    // we only guard against asymptotic blowups (>20x).
    let engine = dblp_engine();
    let request = SearchRequest::parse("data algorithm").unwrap();
    let v = engine.execute(&request.clone()).unwrap();
    let x = engine
        .execute(&request.algorithm(AlgorithmKind::MaxMatchRtf))
        .unwrap();
    let (vt, xt) = (v.timings.total(), x.timings.total());
    assert!(
        vt < xt * 20 && xt < vt * 20,
        "runtime divergence: ValidRTF {vt:?} vs MaxMatch {xt:?}"
    );
}

#[test]
fn store_shreds_generated_corpus_consistently() {
    // The store path (shred → keyword lookup) agrees with the in-memory
    // index on posting lists.
    let tree = generate_dblp(&DblpConfig::with_records(300, 7));
    let doc = xks::store::shred(&tree);
    let index = xks::index::InvertedIndex::build(&tree);
    for kw in ["data", "xml", "keyword", "algorithm"] {
        let from_store: Vec<String> = doc
            .keyword_deweys(kw)
            .iter()
            .map(ToString::to_string)
            .collect();
        let from_index: Vec<String> = index.postings(kw).iter().map(ToString::to_string).collect();
        assert_eq!(from_store, from_index, "postings differ for {kw}");
    }
}

#[test]
fn snapshot_load_reindexes_identically() {
    // Full store round trip: shred → save → load → to_postings →
    // InvertedIndex, against the directly-built index.
    let tree = generate_dblp(&DblpConfig::with_records(200, 3));
    let doc = xks::store::shred(&tree);
    let dir = std::env::temp_dir().join("xks-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snapshot.json");
    xks::store::snapshot::save(&doc, &path).unwrap();
    let loaded = xks::store::snapshot::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    let from_snapshot =
        xks::index::InvertedIndex::from_postings(loaded.to_postings(), loaded.element_count());
    let direct = xks::index::InvertedIndex::build(&tree);
    assert_eq!(from_snapshot.vocabulary_size(), direct.vocabulary_size());
    for kw in ["data", "algorithm", "title", "author"] {
        assert_eq!(from_snapshot.postings(kw), direct.postings(kw), "{kw}");
    }
}

#[test]
fn stemmed_index_reproduces_lucene_style_matching() {
    // The paper's Example 2 relies on "Skyline Querying" matching the
    // query keyword "query" (Lucene analysis). The exact-match default
    // cannot do that; the stemmed index can.
    use xks::xmltree::stem::light_stem;
    let tree = xks::xmltree::parse(
        "<pubs><paper><title>Efficient Skyline Querying with Preferences</title></paper></pubs>",
    )
    .unwrap();

    let exact = xks::index::InvertedIndex::build(&tree);
    assert!(exact.postings("query").is_empty());

    let stemmed = xks::index::InvertedIndex::build_with(&tree, light_stem);
    assert_eq!(stemmed.postings("query").len(), 1);
    assert_eq!(stemmed.postings("preference").len(), 1);
    // Resolve a stemmed query end to end.
    let q = Query::from_words(["Querying", "skyline"].iter().map(|w| light_stem(w))).unwrap();
    assert!(stemmed.resolve(&q).is_some());
}

#[test]
fn degenerate_documents_are_handled() {
    // Single-node document: the root is keyword node, anchor, and
    // fragment all at once.
    let tree = xks::xmltree::parse("<note>xml keyword</note>").unwrap();
    let engine = SearchEngine::new(tree);
    let out = engine
        .execute(&SearchRequest::parse("xml keyword").unwrap())
        .unwrap();
    assert_eq!(out.hits.len(), 1);
    assert_eq!(out.hits[0].fragment.len(), 1);
    assert_eq!(out.hits[0].fragment.anchor.to_string(), "0");

    // Keyword split across root text and root label.
    let tree = xks::xmltree::parse("<note>keyword</note>").unwrap();
    let engine = SearchEngine::new(tree);
    let out = engine
        .execute(&SearchRequest::parse("note keyword").unwrap())
        .unwrap();
    assert_eq!(out.hits.len(), 1);

    // Single keyword, many matches: every match is its own fragment.
    let tree = xks::xmltree::parse("<a><b>w</b><b>w</b><b>w</b></a>").unwrap();
    let engine = SearchEngine::new(tree);
    let out = engine.execute(&SearchRequest::parse("w").unwrap()).unwrap();
    assert_eq!(out.hits.len(), 3);
    for h in &out.hits {
        assert_eq!(h.fragment.len(), 1);
    }
}
