//! Golden-digest pin of a mid-size skewed matrix cell
//! (`s10-flat-zipf-single`: 600 records, Zipf vocabulary, full-grammar
//! query set) — the PR 10 companion to the 43-query seed digest, so
//! planner/ingest changes are pinned on a non-trivial corpus too.
//!
//! The digest is computed on the **memory** backend and independently
//! on a **4-shard disk** corpus in exact mode; the two must agree byte
//! for byte before either is compared to the committed file
//! `tests/golden/matrix_digest.txt`.
//!
//! Regenerate deliberately with `XKS_BLESS_GOLDEN=1 cargo test -q
//! --test matrix_golden` after a change that is *supposed* to alter
//! results.

mod common;

use common::{digest_line, ALGORITHMS};
use xks::core::{Fragment, MemoryCorpus, SearchEngine, SearchRequest};
use xks::datagen::scenario::ScenarioSpec;
use xks::persist::{write_sharded, IndexWriter, ShardedCorpus};
use xks::store::shred;

const CELL: &str = "s10-flat-zipf-single";
const SHARDS: usize = 4;

const GOLDEN_MATRIX: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/matrix_digest.txt"
);

fn digest_lines(engine: &SearchEngine, scenario: &xks::datagen::scenario::Scenario) -> Vec<String> {
    let source = engine.corpus().expect("source-backed engine");
    let mut lines = Vec::new();
    for (i, q) in scenario.queries.iter().enumerate() {
        let abbrev = format!("{}{i}", q.class.name());
        // Exact mode: no top-k, no ranking — the digest must be the
        // full Definition-4 answer.
        let request = SearchRequest::parse(&q.text).unwrap();
        for kind in ALGORITHMS {
            let response = engine.execute(&request.clone().algorithm(kind)).unwrap();
            let fragments: Vec<Fragment> = response.into_fragments();
            lines.push(digest_line(CELL, &abbrev, kind, &fragments, source));
        }
    }
    lines
}

#[test]
fn matrix_cell_digest_is_pinned() {
    let scenario = ScenarioSpec::parse(CELL).expect("known cell").generate();
    let doc = shred(&scenario.tree);

    let memory = SearchEngine::from_owned_source(MemoryCorpus::new(doc.clone()));

    let dir = std::env::temp_dir().join("xks-matrix-golden");
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join(format!("{CELL}.xksm"));
    write_sharded(&IndexWriter::new(), &doc, &manifest, SHARDS).unwrap();
    let sharded = SearchEngine::from_shard_set(ShardedCorpus::open(&manifest).unwrap().shard_set());

    let memory_lines = digest_lines(&memory, &scenario);
    let sharded_lines = digest_lines(&sharded, &scenario);
    assert_eq!(
        memory_lines, sharded_lines,
        "memory and 4-shard disk digests must be byte-identical"
    );
    assert_eq!(
        memory_lines.len(),
        scenario.queries.len() * ALGORITHMS.len()
    );

    let rendered = memory_lines.join("\n") + "\n";
    if std::env::var_os("XKS_BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_MATRIX).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_MATRIX, &rendered).unwrap();
        eprintln!("blessed {GOLDEN_MATRIX}");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_MATRIX)
        .expect("matrix golden digest missing; run with XKS_BLESS_GOLDEN=1 to record it");
    for (i, (got, want)) in rendered.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            got, want,
            "matrix digest line {i} diverged from the golden file"
        );
    }
    assert_eq!(
        rendered.lines().count(),
        golden.lines().count(),
        "matrix digest line count diverged"
    );
}
