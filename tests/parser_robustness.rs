//! Parser robustness and round-trip properties.

use proptest::prelude::*;
use xks::datagen::random_tree::{random_document, RandomDocConfig};
use xks::xmltree::parse;
use xks::xmltree::writer::{to_xml, to_xml_compact};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary input must never panic the parser — every outcome is a
    /// clean `Ok`/`Err`.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// Arbitrary *angle-bracket-rich* soup (more likely to reach deep
    /// parser states than plain ASCII).
    #[test]
    fn parser_never_panics_on_tag_soup(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "<a>", "</a>", "<b x='1'>", "</b>", "<!--", "-->", "<![CDATA[", "]]>",
                "<?pi", "?>", "&amp;", "&#x41;", "&bogus;", "text", "<", ">", "\"", "'",
                "<a/>", "<!DOCTYPE x>", "=",
            ]),
            0..30,
        )
    ) {
        let input: String = parts.concat();
        let _ = parse(&input);
    }

    /// Compact serialization of a random document parses back to the
    /// identical structure.
    #[test]
    fn compact_round_trip(
        nodes in 1usize..60,
        labels in 1usize..6,
        words in 1usize..8,
        seed in any::<u64>(),
    ) {
        let tree = random_document(&RandomDocConfig {
            nodes, labels, words, max_words_per_node: 3, seed,
        });
        let xml = to_xml_compact(&tree);
        let back = parse(&xml).expect("own output parses");
        prop_assert_eq!(tree.fingerprint(), back.fingerprint());
    }

    /// Pretty serialization too — indentation must not introduce
    /// phantom text nodes.
    #[test]
    fn pretty_round_trip(
        nodes in 1usize..40,
        seed in any::<u64>(),
    ) {
        let tree = random_document(&RandomDocConfig {
            nodes, labels: 4, words: 5, max_words_per_node: 2, seed,
        });
        let xml = to_xml(&tree);
        let back = parse(&xml).expect("own output parses");
        prop_assert_eq!(tree.fingerprint(), back.fingerprint());
    }
}
