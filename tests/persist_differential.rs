//! Differential test for the persistence subsystem: over generated DBLP
//! and XMark corpora and the full Figure 5/6 workloads (43 queries),
//! `SearchEngine` results over an `xks-persist` `IndexReader` must be
//! **byte-identical** — same fragments, same order after ranking — to
//! results over the in-memory `ShreddedDoc` backend. The buffer-pool
//! counters additionally prove the reader never slurps the postings
//! section eagerly.

use std::sync::Arc;

use xks::core::rank::RankWeights;
use xks::core::{AlgorithmKind, CorpusSource, MemoryCorpus, SearchEngine, SearchRequest};
use xks::datagen::queries::{dblp_workload, xmark_workload};
use xks::datagen::{generate_dblp, generate_xmark, DblpConfig, XmarkConfig, XmarkSize};
use xks::index::Query;
use xks::persist::{IndexReader, IndexWriter};
use xks::store::shred;
use xks::xmltree::XmlTree;

struct Corpora {
    name: &'static str,
    tree: XmlTree,
    workload: Vec<(&'static str, String)>,
}

fn corpora() -> Vec<Corpora> {
    vec![
        Corpora {
            name: "dblp",
            tree: generate_dblp(&DblpConfig::with_records(1_000, 42)),
            workload: dblp_workload(),
        },
        Corpora {
            name: "xmark",
            tree: generate_xmark(&XmarkConfig::sized(XmarkSize::Standard, 60, 42)),
            workload: xmark_workload(),
        },
    ]
}

fn index_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("xks-persist-differential");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}.xks"))
}

#[test]
fn disk_and_memory_backends_are_byte_identical() {
    let mut queries_checked = 0usize;
    let mut nonempty = 0usize;
    for corpus in corpora() {
        let doc = shred(&corpus.tree);
        let path = index_path(corpus.name);
        IndexWriter::new().write(&doc, &path).unwrap();

        let reader = Arc::new(IndexReader::open(&path).unwrap());
        assert_eq!(
            reader.stats().pool.pages_read,
            0,
            "{}: open must not touch data pages through the pool",
            corpus.name
        );

        let memory = SearchEngine::from_owned_source(MemoryCorpus::new(doc));
        // One opened index (one buffer pool, one set of caches) backs
        // the engine while this test keeps reading its stats — the
        // shared index-handle pattern.
        let disk = SearchEngine::from_source(Arc::clone(&reader) as Arc<dyn CorpusSource>);
        let weights = RankWeights::default();

        for (abbrev, keywords) in &corpus.workload {
            let query = Query::parse(keywords).unwrap();
            for kind in [
                AlgorithmKind::ValidRtf,
                AlgorithmKind::MaxMatchRtf,
                AlgorithmKind::MaxMatchSlca,
            ] {
                // Ranked requests through the one execute path: hits,
                // scores, and signals must all agree across backends.
                let request = SearchRequest::from_query(query.clone())
                    .algorithm(kind)
                    .weights(weights);
                let m = memory.execute(&request).unwrap();
                let d = disk.execute(&request).unwrap();
                assert_eq!(
                    m.hits, d.hits,
                    "{}/{abbrev}/{kind:?}: hits diverge",
                    corpus.name
                );
                assert_eq!(m.stats, d.stats, "{}/{abbrev}/{kind:?}", corpus.name);
                // Rendered output must match byte for byte too (labels
                // resolve through each backend's own dictionary).
                let mem_text: Vec<String> = m
                    .fragments()
                    .map(|f| f.render_source(memory.corpus().expect("source-backed")))
                    .collect();
                let disk_text: Vec<String> = d
                    .fragments()
                    .map(|f| f.render_source(disk.corpus().expect("source-backed")))
                    .collect();
                assert_eq!(
                    mem_text, disk_text,
                    "{}/{abbrev}/{kind:?}: rendering diverges",
                    corpus.name
                );
                if !m.hits.is_empty() {
                    nonempty += 1;
                }
            }
            queries_checked += 1;
        }

        let stats = reader.stats();
        let total_pages = stats.file_len / u64::from(stats.page_size);
        assert!(
            stats.pool.pages_read > 0,
            "{}: queries must flow through the pool",
            corpus.name
        );
        assert!(
            stats.pool.cache_hits > stats.pool.cache_misses,
            "{}: repeated lookups should mostly hit the cache \
             (hits {} vs misses {})",
            corpus.name,
            stats.pool.cache_hits,
            stats.pool.cache_misses
        );
        eprintln!(
            "{}: {} file pages, {} fetched, {} hits over the whole workload",
            corpus.name, total_pages, stats.pool.pages_read, stats.pool.cache_hits
        );
        std::fs::remove_file(&path).unwrap();
    }
    assert!(queries_checked >= 20, "only {queries_checked} queries");
    assert!(nonempty >= 20, "only {nonempty} non-empty results");
}

#[test]
fn single_query_reads_a_fraction_of_the_postings_section() {
    let tree = generate_dblp(&DblpConfig::with_records(2_000, 7));
    let doc = shred(&tree);
    let path = index_path("lazy-postings");
    IndexWriter::new().write(&doc, &path).unwrap();

    let reader = IndexReader::open(&path).unwrap();
    let stats = reader.stats();
    assert!(
        stats.postings_pages >= 4,
        "corpus too small to demonstrate laziness ({} postings pages)",
        stats.postings_pages
    );
    assert_eq!(stats.pool.pages_read, 0);

    // Resolve one two-keyword query directly against the reader.
    for kw in ["data", "algorithm"] {
        assert!(!reader.try_keyword_deweys(kw).unwrap().is_empty());
    }
    let after = reader.stats();
    assert!(
        after.pool.pages_read < after.postings_pages,
        "one query fetched {} pages — at least the {}-page postings \
         section was slurped eagerly",
        after.pool.pages_read,
        after.postings_pages
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn snapshot_and_index_agree_after_reload() {
    // shred → JSON snapshot → load → MemoryCorpus  must equal
    // shred → .xks → IndexReader, for postings and element facts.
    let tree = generate_xmark(&XmarkConfig::sized(XmarkSize::Standard, 30, 11));
    let doc = shred(&tree);

    let dir = std::env::temp_dir().join("xks-persist-differential");
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("snapshot-agree.json");
    let xks_path = dir.join("snapshot-agree.xks");
    xks::store::snapshot::save(&doc, &json_path).unwrap();
    IndexWriter::new().write(&doc, &xks_path).unwrap();

    let from_json = MemoryCorpus::new(xks::store::snapshot::load(&json_path).unwrap());
    let from_disk = IndexReader::open(&xks_path).unwrap();

    for kw in ["particle", "egypt", "description", "order", "leon"] {
        assert_eq!(
            from_json.keyword_deweys(kw),
            from_disk.keyword_deweys(kw),
            "{kw}"
        );
        for dewey in from_json.keyword_deweys(kw).iter().take(5) {
            assert_eq!(
                from_json.element(dewey),
                from_disk.element(dewey),
                "{kw} @ {dewey}"
            );
        }
    }
    std::fs::remove_file(&json_path).unwrap();
    std::fs::remove_file(&xks_path).unwrap();
}
