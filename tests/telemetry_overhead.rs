//! Gate on the cost of the telemetry layer: replaying the 43-query
//! Figure 5/6 workload with per-stage tracing enabled must stay within
//! 5% of the untraced throughput.
//!
//! Tracing records into preallocated context storage (see
//! `tests/zero_alloc.rs` for the allocation proof); the residual cost
//! is a handful of `Instant::now` calls per query. The measurement
//! interleaves untraced and traced trials and compares best-of-N, so
//! scheduler noise and thermal drift hit both sides alike; the gate
//! retries with more trials before declaring a regression, because a
//! loaded CI box must not fail a correct build.

use std::time::{Duration, Instant};

use xks::core::{MemoryCorpus, SearchEngine, SearchRequest};
use xks::datagen::queries::{dblp_workload, xmark_workload};
use xks::datagen::{generate_dblp, generate_xmark, DblpConfig, XmarkConfig, XmarkSize};
use xks::store::shred;

const SWEEPS_PER_TRIAL: usize = 4;
const MAX_OVERHEAD: f64 = 0.05;

struct Workload {
    engine: SearchEngine,
    untraced: Vec<SearchRequest>,
    traced: Vec<SearchRequest>,
}

fn build_workloads() -> Vec<Workload> {
    let mut out = Vec::new();
    for (tree, workload) in [
        (
            generate_dblp(&DblpConfig::with_records(500, 42)),
            dblp_workload(),
        ),
        (
            generate_xmark(&XmarkConfig::sized(XmarkSize::Standard, 40, 42)),
            xmark_workload(),
        ),
    ] {
        let engine = SearchEngine::from_owned_source(MemoryCorpus::new(shred(&tree)));
        let untraced: Vec<SearchRequest> = workload
            .iter()
            .map(|(_, keywords)| SearchRequest::parse(keywords).unwrap())
            .collect();
        let traced = untraced.iter().map(|r| r.clone().trace(true)).collect();
        out.push(Workload {
            engine,
            untraced,
            traced,
        });
    }
    out
}

/// One timed trial: `SWEEPS_PER_TRIAL` passes over every workload
/// query, picking the traced or untraced request set.
fn trial(workloads: &[Workload], traced: bool) -> Duration {
    let start = Instant::now();
    for _ in 0..SWEEPS_PER_TRIAL {
        for w in workloads {
            let requests = if traced { &w.traced } else { &w.untraced };
            for request in requests {
                let response = w.engine.execute(request).expect("memory backend");
                debug_assert_eq!(response.trace.is_some(), traced);
                std::hint::black_box(response.hits.len());
            }
        }
    }
    start.elapsed()
}

#[test]
fn tracing_overhead_stays_within_five_percent() {
    let workloads = build_workloads();
    let total: usize = workloads.iter().map(|w| w.untraced.len()).sum();
    assert_eq!(total, 43, "the Figure 5/6 workload has 43 queries");

    // Traced runs really do trace (checked once, outside the timing).
    let sample = workloads[0]
        .engine
        .execute(&workloads[0].traced[0])
        .unwrap();
    let trace = sample.trace.expect("traced request yields a trace");
    assert!(!trace.spans().is_empty(), "trace records pipeline spans");

    // Warm-up: grow every context buffer to steady state on both paths.
    trial(&workloads, false);
    trial(&workloads, true);

    // Interleaved best-of-N, escalating before failing: noise only ever
    // inflates a measurement, so the minimum is the honest cost.
    let mut best_untraced = Duration::MAX;
    let mut best_traced = Duration::MAX;
    for round in 1..=3 {
        for _ in 0..3 * round {
            best_untraced = best_untraced.min(trial(&workloads, false));
            best_traced = best_traced.min(trial(&workloads, true));
        }
        let untraced = best_untraced.as_secs_f64();
        let traced = best_traced.as_secs_f64();
        if traced <= untraced * (1.0 + MAX_OVERHEAD) {
            return; // gate holds
        }
        eprintln!(
            "round {round}: traced {traced:.4}s vs untraced {untraced:.4}s — retrying with more trials"
        );
    }
    let untraced = best_untraced.as_secs_f64();
    let traced = best_traced.as_secs_f64();
    panic!(
        "tracing overhead exceeds {:.0}%: best traced {traced:.4}s vs best untraced {untraced:.4}s \
         ({:.1}% slower)",
        MAX_OVERHEAD * 100.0,
        (traced / untraced - 1.0) * 100.0
    );
}
