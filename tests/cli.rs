//! Black-box tests of the `xks` CLI binary.

use std::process::Command;

fn xks() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xks"))
}

fn sample_file() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("xks-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("team.xml");
    std::fs::write(
        &path,
        "<team><name>Grizzlies</name><players>\
         <player><name>Gassol</name><position>forward</position></player>\
         <player><name>Miller</name><position>guard</position></player>\
         <player><name>Warrick</name><position>forward</position></player>\
         </players></team>",
    )
    .unwrap();
    path
}

#[test]
fn search_demonstrates_deduplication() {
    let out = xks()
        .args(["search"])
        .arg(sample_file())
        .args(["grizzlies position", "--xml"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The duplicate forward player is pruned: exactly two positions.
    assert_eq!(stdout.matches("<position>").count(), 2, "{stdout}");
    assert!(stdout.contains("forward") && stdout.contains("guard"));
}

#[test]
fn search_maxmatch_keeps_duplicates() {
    let out = xks()
        .args(["search"])
        .arg(sample_file())
        .args(["grizzlies position", "--xml", "--algo", "maxmatch"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("<position>").count(), 3, "{stdout}");
}

#[test]
fn search_threads_flag_matches_single_thread() {
    // Three queries so `--threads 3` actually spawns workers (the
    // executor clamps to the batch size); results must come back in
    // input order, byte-identical to the single-thread run.
    let file = sample_file();
    let run = |threads: &str| {
        let out = xks()
            .args(["search"])
            .arg(&file)
            .args([
                "grizzlies position",
                "forward",
                "guard miller",
                "--threads",
                threads,
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let sequential = run("1");
    assert_eq!(
        sequential.matches("## query:").count(),
        3,
        "one header per query:\n{sequential}"
    );
    assert_eq!(sequential, run("3"), "--threads must not change results");
}

#[test]
fn bench_batch_mode_reports_throughput() {
    let dir = std::env::temp_dir().join("xks-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let xml = sample_file();
    let index = dir.join("team.xks");
    let queries = dir.join("queries.txt");
    std::fs::write(
        &queries,
        "# comment lines and blanks are skipped\n\n\
         grizzlies position\nforward\nguard miller\n",
    )
    .unwrap();

    let out = xks()
        .args(["build-index"])
        .arg(&xml)
        .arg(&index)
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    let out = xks()
        .args(["bench", "--index"])
        .arg(&index)
        .args(["--queries"])
        .arg(&queries)
        .args(["--threads", "2", "--sweeps", "2"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // 3 queries x 2 sweeps through 2 threads.
    assert!(
        stdout.contains("6 queries (3 x 2 sweeps), 2 thread(s)"),
        "{stdout}"
    );
    assert!(stdout.contains("queries/sec"), "{stdout}");
    assert!(stdout.contains("work split"), "{stdout}");
}

#[test]
fn search_format_json_matches_documented_schema() {
    let out = xks()
        .args(["search"])
        .arg(sample_file())
        .args(["grizzlies position", "--format", "json", "--top-k", "5"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = xks::store::json::parse(stdout.trim()).expect("stdout is one JSON document");

    // Schema of docs/API.md: results[] of {query, algorithm, hits,
    // stats, timings_us}.
    let results = value.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), 1);
    let result = &results[0];
    assert_eq!(
        result.get("query").unwrap().as_str(),
        Some("grizzlies position")
    );
    assert_eq!(result.get("algorithm").unwrap().as_str(), Some("valid"));

    let hits = result.get("hits").unwrap().as_arr().unwrap();
    assert_eq!(hits.len(), 1, "one meaningful fragment for the team doc");
    let hit = &hits[0];
    assert!(hit.get("anchor").unwrap().as_str().is_some());
    // --top-k implies ranking: a numeric score plus its signals.
    let score = hit.get("score").unwrap().as_f64().expect("ranked hit");
    assert!((0.0..=1.0).contains(&score));
    assert_eq!(hit.get("signals").unwrap().as_arr().unwrap().len(), 3);
    let nodes = hit.get("nodes").unwrap().as_arr().unwrap();
    assert!(!nodes.is_empty());
    for node in nodes {
        assert!(node.get("dewey").unwrap().as_str().is_some());
        assert!(node.get("label").unwrap().as_str().is_some());
        assert!(matches!(
            node.get("keyword").unwrap(),
            xks::store::json::Value::Bool(_)
        ));
    }
    // The duplicate forward player is pruned even through JSON: two
    // position nodes.
    let positions = nodes
        .iter()
        .filter(|n| n.get("label").unwrap().as_str() == Some("position"))
        .count();
    assert_eq!(positions, 2);

    let stats = result.get("stats").unwrap();
    assert!(matches!(
        stats.get("truncated").unwrap(),
        xks::store::json::Value::Bool(false)
    ));
    assert_eq!(stats.get("total_before_top_k").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("filtered_out").unwrap().as_u64(), Some(0));
    assert_eq!(
        stats.get("dropped_terms").unwrap().as_arr().unwrap().len(),
        0
    );

    let timings = result.get("timings_us").unwrap();
    for stage in [
        "get_keyword_nodes",
        "get_lca",
        "get_rtf",
        "prune_rtf",
        "total",
    ] {
        assert!(timings.get(stage).unwrap().as_u64().is_some(), "{stage}");
    }
}

#[test]
fn search_top_k_truncates_and_reports() {
    // "position" alone anchors one fragment per player-subtree match;
    // use the multi-anchor query "forward" (two forwards) to see
    // truncation.
    let out = xks()
        .args(["search"])
        .arg(sample_file())
        .args(["forward", "--format", "json", "--top-k", "1"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = xks::store::json::parse(stdout.trim()).unwrap();
    let result = &value.get("results").unwrap().as_arr().unwrap()[0];
    assert_eq!(result.get("hits").unwrap().as_arr().unwrap().len(), 1);
    let stats = result.get("stats").unwrap();
    assert!(matches!(
        stats.get("truncated").unwrap(),
        xks::store::json::Value::Bool(true)
    ));
    assert_eq!(stats.get("total_before_top_k").unwrap().as_u64(), Some(2));
}

#[test]
fn search_limit_caps_json_hits_and_reports_omissions() {
    let out = xks()
        .args(["search"])
        .arg(sample_file())
        .args(["forward", "--format", "json", "--limit", "1"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = xks::store::json::parse(stdout.trim()).unwrap();
    let result = &value.get("results").unwrap().as_arr().unwrap()[0];
    // Two forwards match; --limit 1 emits one hit and says so.
    assert_eq!(result.get("hits").unwrap().as_arr().unwrap().len(), 1);
    assert_eq!(result.get("hits_omitted").unwrap().as_u64(), Some(1));
    // The engine-side stats still describe the full response.
    assert_eq!(
        result
            .get("stats")
            .unwrap()
            .get("total_before_top_k")
            .unwrap()
            .as_u64(),
        Some(2)
    );
}

#[test]
fn search_operator_grammar_reaches_the_cli() {
    // Exclusion: dropping fragments whose subtree contains "gassol".
    let run = |query: &str| {
        let out = xks()
            .args(["search"])
            .arg(sample_file())
            .args([query, "--format", "json"])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        xks::store::json::parse(stdout.trim()).unwrap()
    };
    let hits_of = |value: &xks::store::json::Value| {
        value.get("results").unwrap().as_arr().unwrap()[0]
            .get("hits")
            .unwrap()
            .as_arr()
            .unwrap()
            .len()
    };
    // "grizzlies forward" anchors one fragment at the team root, whose
    // subtree contains "gassol" — the exclusion rejects it.
    assert_eq!(hits_of(&run("grizzlies forward")), 1);
    let filtered = run("grizzlies forward -gassol");
    let result = &filtered.get("results").unwrap().as_arr().unwrap()[0];
    assert_eq!(result.get("hits").unwrap().as_arr().unwrap().len(), 0);
    assert_eq!(
        result
            .get("stats")
            .unwrap()
            .get("filtered_out")
            .unwrap()
            .as_u64(),
        Some(1)
    );
    assert_eq!(
        result.get("query").unwrap().as_str(),
        Some("grizzlies forward -gassol"),
        "canonical grammar rendering round-trips through the CLI"
    );
    // Exclusions scope to the anchor subtree: "forward" alone anchors
    // at the position leaves, which never contain "gassol".
    assert_eq!(hits_of(&run("forward -gassol")), 2);

    // A label filter: position:forward keeps only nodes labeled
    // position; name:forward matches nothing.
    let labeled = run("position:forward");
    assert_eq!(
        labeled.get("results").unwrap().as_arr().unwrap()[0]
            .get("hits")
            .unwrap()
            .as_arr()
            .unwrap()
            .len(),
        2
    );
    let impossible = run("name:forward");
    assert_eq!(
        impossible.get("results").unwrap().as_arr().unwrap()[0]
            .get("hits")
            .unwrap()
            .as_arr()
            .unwrap()
            .len(),
        0
    );
}

#[test]
fn search_bad_grammar_fails_cleanly() {
    let out = xks()
        .args(["search"])
        .arg(sample_file())
        .args(["\"unclosed phrase"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unclosed"), "{stderr}");
}

#[test]
fn bench_format_json_reports_throughput() {
    let dir = std::env::temp_dir().join("xks-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let xml = sample_file();
    let queries = dir.join("queries-json.txt");
    std::fs::write(&queries, "grizzlies position\nforward\n").unwrap();

    let out = xks()
        .args(["bench"])
        .arg(&xml)
        .args(["--queries"])
        .arg(&queries)
        .args(["--sweeps", "1", "--format", "json"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = xks::store::json::parse(stdout.trim()).unwrap();
    assert_eq!(value.get("queries").unwrap().as_u64(), Some(2));
    assert_eq!(value.get("sweeps").unwrap().as_u64(), Some(1));
    assert!(value.get("queries_per_sec").unwrap().as_f64().unwrap() > 0.0);
    assert!(value.get("fragments").unwrap().as_u64().is_some());
}

#[test]
fn compare_format_json() {
    let out = xks()
        .args(["compare"])
        .arg(sample_file())
        .args(["grizzlies position", "--format", "json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = xks::store::json::parse(stdout.trim()).unwrap();
    assert_eq!(value.get("rtf_count").unwrap().as_u64(), Some(1));
    for field in ["cfr", "apr", "apr_prime", "max_apr"] {
        assert!(value.get(field).unwrap().as_f64().is_some(), "{field}");
    }
}

#[test]
fn compare_prints_effectiveness() {
    let out = xks()
        .args(["compare"])
        .arg(sample_file())
        .args(["grizzlies position"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("CFR"), "{stdout}");
    assert!(stdout.contains("Max APR"), "{stdout}");
}

#[test]
fn stats_reports_counts() {
    let out = xks().args(["stats"]).arg(sample_file()).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("nodes          : 12"), "{stdout}");
}

#[test]
fn shred_writes_snapshot() {
    let out_path = std::env::temp_dir().join("xks-cli-test/tables.json");
    let out = xks()
        .args(["shred"])
        .arg(sample_file())
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let doc = xks::store::snapshot::load(&out_path).expect("valid snapshot");
    assert_eq!(doc.element_count(), 12);
    std::fs::remove_file(&out_path).unwrap();
}

#[test]
fn bad_usage_fails_cleanly() {
    for args in [
        vec![],
        vec!["searchx"],
        vec!["search", "/missing.xml", "kw"],
    ] {
        let out = xks().args(&args).output().unwrap();
        assert!(!out.status.success(), "args {args:?} should fail");
        assert!(!out.stderr.is_empty());
    }
}

#[test]
fn sharded_index_matches_monolithic_through_the_cli() {
    let dir = std::env::temp_dir().join("xks-cli-test-sharded");
    std::fs::create_dir_all(&dir).unwrap();
    let xml = dir.join("corpus.xml");
    std::fs::write(
        &xml,
        "<dblp>\
         <article><title>xml keyword search</title><author>liu</author></article>\
         <article><title>skyline query</title><author>chen</author></article>\
         <article><title>keyword search relational</title><author>liu</author></article>\
         <article><title>spatial index</title><author>kim</author></article>\
         </dblp>",
    )
    .unwrap();
    let mono = dir.join("corpus.xks");
    let manifest = dir.join("corpus.xksm");

    let out = xks()
        .args(["build-index"])
        .arg(&xml)
        .arg(&mono)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = xks()
        .args(["build-index"])
        .arg(&xml)
        .arg(&manifest)
        .args(["--shards", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("3 shard(s)"), "{stderr}");

    // search --index sniffs the magic: the manifest and the monolithic
    // index must produce identical results (hits and stats — the
    // timings_us block is wall clock and may differ).
    let run = |index: &std::path::Path, extra: &[&str]| {
        let out = xks()
            .args(["search", "--index"])
            .arg(index)
            .args(["keyword search", "liu", "--format", "json"])
            .args(extra)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let value = xks::store::json::parse(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
        let results = value.get("results").unwrap().as_arr().unwrap();
        results
            .iter()
            .map(|r| {
                // `shards_skipped` is honestly backend-dependent —
                // only the scatter-gather path can skip filtered
                // shards — so it is asserted separately, not in the
                // byte-equality check.
                let mut stats = r.get("stats").unwrap().clone();
                let skipped = match &mut stats {
                    xks::store::json::Value::Obj(map) => map.remove("shards_skipped").unwrap(),
                    other => panic!("stats is not an object: {other:?}"),
                };
                (
                    xks::store::json::to_string(r.get("hits").unwrap()),
                    xks::store::json::to_string(&stats),
                    xks::store::json::to_string(&skipped),
                )
            })
            .collect::<Vec<_>>()
    };
    let mono_out = run(&mono, &[]);
    assert_eq!(mono_out.len(), 2, "one result per query");
    let sharded_out = run(&manifest, &[]);
    for ((m_hits, m_stats, m_skipped), (s_hits, s_stats, _)) in mono_out.iter().zip(&sharded_out) {
        assert_eq!(m_hits, s_hits, "default fan-out hits");
        assert_eq!(m_stats, s_stats, "default fan-out stats");
        assert_eq!(m_skipped, "0", "monolithic index never skips shards");
    }
    assert_eq!(
        sharded_out,
        run(&manifest, &["--shard-threads", "2"]),
        "explicit fan-out"
    );
}

#[test]
fn explain_reports_the_plan_on_text_and_json() {
    let dir = std::env::temp_dir().join("xks-cli-test-explain");
    std::fs::create_dir_all(&dir).unwrap();
    let xml = dir.join("skew.xml");
    // 20 "common" occurrences vs 1 "rare": enough skew for the
    // planner to pick the galloping strategy with "rare" driving.
    let mut doc = String::from("<lib>");
    for i in 0..20 {
        doc.push_str(&format!("<b><t>common w{i}</t></b>"));
    }
    doc.push_str("<b><t>common rare</t></b></lib>");
    std::fs::write(&xml, doc).unwrap();
    let index = dir.join("skew.xks");
    let out = xks()
        .args(["build-index"])
        .arg(&xml)
        .arg(&index)
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = xks()
        .args(["explain", "common rare", "--index"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("strategy gallop"), "{text}");
    assert!(text.contains("driver: \"rare\""), "{text}");
    // Rarest-first: "rare" must be listed before "common".
    let rare_at = text.find("1. rare").expect("rare listed first");
    let common_at = text.find("2. common").expect("common second");
    assert!(rare_at < common_at, "{text}");

    let out = xks()
        .args(["explain", "common rare", "--index"])
        .arg(&index)
        .args(["--format", "json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let value = xks::store::json::parse(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    assert_eq!(
        value.get("strategy").unwrap(),
        &xks::store::json::Value::Str("gallop".to_owned())
    );
    let terms = value.get("terms").unwrap().as_arr().unwrap();
    assert_eq!(terms.len(), 2);
    assert_eq!(
        terms[0].get("keyword").unwrap(),
        &xks::store::json::Value::Str("rare".to_owned())
    );
    assert_eq!(
        terms[0].get("postings").unwrap(),
        &xks::store::json::Value::Num(1)
    );
    assert_eq!(
        terms[0].get("doc_freq").unwrap(),
        &xks::store::json::Value::Num(1)
    );
    assert_eq!(
        terms[0].get("sealed").unwrap(),
        &xks::store::json::Value::Bool(true)
    );

    // A uniform query on the same index keeps the merge path and the
    // text output says why.
    let out = xks()
        .args(["explain", "w1 w2", "--index"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("strategy full-merge"), "{text}");
    assert!(text.contains("note: full k-way merge"), "{text}");
}

#[test]
fn sharded_index_stats_json_schema() {
    let dir = std::env::temp_dir().join("xks-cli-test-sharded-stats");
    std::fs::create_dir_all(&dir).unwrap();
    let xml = dir.join("corpus.xml");
    std::fs::write(&xml, "<r><a><t>alpha beta</t></a><b><t>gamma</t></b></r>").unwrap();
    let manifest = dir.join("corpus.xksm");
    let out = xks()
        .args(["build-index"])
        .arg(&xml)
        .arg(&manifest)
        .args(["--shards", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = xks()
        .args(["index-stats"])
        .arg(&manifest)
        .args(["--format", "json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = xks::store::json::parse(stdout.trim()).expect("one JSON document");
    // Schema of docs/API.md §index-stats.
    assert!(matches!(
        value.get("sharded").unwrap(),
        xks::store::json::Value::Bool(true)
    ));
    assert_eq!(value.get("shard_count").unwrap().as_u64(), Some(2));
    assert_eq!(value.get("checksums").unwrap().as_str(), Some("ok"));
    let totals = value.get("totals").unwrap();
    assert!(totals.get("elements").unwrap().as_u64().unwrap() > 0);
    assert!(totals.get("file_len").unwrap().as_u64().unwrap() > 0);
    let shards = value.get("shards").unwrap().as_arr().unwrap();
    assert_eq!(shards.len(), 2);
    for shard in shards {
        assert!(shard.get("file").unwrap().as_str().is_some());
        assert!(shard.get("first_doc").unwrap().as_u64().is_some());
        assert!(shard.get("docs").unwrap().as_u64().is_some());
        assert!(shard.get("elements").unwrap().as_u64().is_some());
        assert!(shard.get("keywords").unwrap().as_u64().is_some());
    }

    // The monolithic schema keeps its flat shape, now tagged.
    let mono = dir.join("corpus.xks");
    assert!(xks()
        .args(["build-index"])
        .arg(&xml)
        .arg(&mono)
        .output()
        .unwrap()
        .status
        .success());
    let out = xks()
        .args(["index-stats"])
        .arg(&mono)
        .args(["--format", "json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let value = xks::store::json::parse(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    assert!(matches!(
        value.get("sharded").unwrap(),
        xks::store::json::Value::Bool(false)
    ));
    assert!(value.get("elements").unwrap().as_u64().is_some());
}

#[test]
fn search_trace_reports_stage_spans_on_both_backends() {
    let dir = std::env::temp_dir().join("xks-cli-test-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let xml = sample_file();
    let index = dir.join("team.xks");
    assert!(xks()
        .args(["build-index"])
        .arg(&xml)
        .arg(&index)
        .output()
        .unwrap()
        .status
        .success());

    // Text mode (memory backend): per-stage breakdown on stderr,
    // fragment output untouched on stdout.
    let out = xks()
        .args(["search"])
        .arg(&xml)
        .args(["grizzlies position", "--trace"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    for stage in ["parse", "resolve", "merge_anchor", "construct", "rank"] {
        assert!(stderr.contains(stage), "missing {stage} in:\n{stderr}");
    }

    // JSON mode (disk backend): the response gains a trace block with
    // ordered spans; omitting --trace omits the block.
    let out = xks()
        .args(["search", "--index"])
        .arg(&index)
        .args(["grizzlies position", "--trace", "--format", "json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let value = xks::store::json::parse(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    let result = &value.get("results").unwrap().as_arr().unwrap()[0];
    let trace = result.get("trace").unwrap();
    assert_eq!(trace.get("dropped").unwrap().as_u64(), Some(0));
    let spans = trace.get("spans").unwrap().as_arr().unwrap();
    let stages: Vec<&str> = spans
        .iter()
        .map(|s| s.get("stage").unwrap().as_str().unwrap())
        .collect();
    for stage in ["parse", "postings_decode", "resolve", "rank"] {
        assert!(stages.contains(&stage), "missing {stage} in {stages:?}");
    }
    for span in spans {
        assert!(span.get("start_ns").unwrap().as_u64().is_some());
        assert!(span.get("dur_ns").unwrap().as_u64().is_some());
    }

    let out = xks()
        .args(["search", "--index"])
        .arg(&index)
        .args(["grizzlies position", "--format", "json"])
        .output()
        .unwrap();
    let value = xks::store::json::parse(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    assert!(
        value.get("results").unwrap().as_arr().unwrap()[0]
            .get("trace")
            .is_none(),
        "untraced responses must not carry a trace block"
    );

    // --trace-out writes a Chrome-trace-event document.
    let trace_path = dir.join("trace.json");
    let out = xks()
        .args(["search", "--index"])
        .arg(&index)
        .args(["grizzlies position", "--trace-out"])
        .arg(&trace_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let chrome = std::fs::read_to_string(&trace_path).unwrap();
    let chrome = xks::store::json::parse(chrome.trim()).expect("valid Chrome trace JSON");
    let events = chrome.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(!events.is_empty());
    assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
    assert_eq!(
        chrome
            .get("otherData")
            .unwrap()
            .get("query")
            .unwrap()
            .as_str(),
        Some("grizzlies position")
    );
}

#[test]
fn stats_index_dumps_registry_snapshot() {
    let dir = std::env::temp_dir().join("xks-cli-test-stats-index");
    std::fs::create_dir_all(&dir).unwrap();
    let xml = dir.join("corpus.xml");
    std::fs::write(
        &xml,
        "<dblp>\
         <article><title>xml keyword search</title><author>liu</author></article>\
         <article><title>skyline query</title><author>chen</author></article>\
         <article><title>keyword search relational</title><author>liu</author></article>\
         <article><title>spatial index</title><author>kim</author></article>\
         </dblp>",
    )
    .unwrap();
    let manifest = dir.join("corpus.xksm");
    assert!(xks()
        .args(["build-index"])
        .arg(&xml)
        .arg(&manifest)
        .args(["--shards", "2"])
        .output()
        .unwrap()
        .status
        .success());
    let queries = dir.join("queries.txt");
    std::fs::write(&queries, "keyword search\nliu\nspatial index\n").unwrap();

    let out = xks()
        .args(["stats", "--index"])
        .arg(&manifest)
        .args(["--queries"])
        .arg(&queries)
        .args(["--threads", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let value = xks::store::json::parse(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    assert_eq!(value.get("schema").unwrap().as_str(), Some("xks-obs/1"));

    // One snapshot unifies every subsystem: buffer pool, postings LRU,
    // element cache, per-shard counters, executor draws, lock health.
    let counters = value.get("counters").unwrap();
    for name in [
        "index.shard.0.pool.cache_hits",
        "index.shard.0.postings_cache.misses",
        "index.shard.1.element_cache.hits",
        "executor.batches",
        "executor.requests",
        "search.queries",
        "lock.poison_recovered",
    ] {
        assert!(counters.get(name).unwrap().as_u64().is_some(), "{name}");
    }
    assert_eq!(counters.get("search.queries").unwrap().as_u64(), Some(3));
    assert_eq!(
        counters.get("lock.poison_recovered").unwrap().as_u64(),
        Some(0),
        "healthy process exports an explicit zero"
    );
    assert_eq!(
        value
            .get("gauges")
            .unwrap()
            .get("index.shard_count")
            .unwrap()
            .as_u64(),
        Some(2)
    );

    // The latency histograms carry coherent percentiles.
    let lat = value
        .get("histograms")
        .unwrap()
        .get("search.total_ns")
        .unwrap();
    assert_eq!(lat.get("count").unwrap().as_u64(), Some(3));
    let p50 = lat.get("p50").unwrap().as_u64().unwrap();
    let p99 = lat.get("p99").unwrap().as_u64().unwrap();
    let max = lat.get("max").unwrap().as_u64().unwrap();
    assert!(
        p50 > 0 && p50 <= p99 && p99 <= max,
        "p50 {p50} p99 {p99} max {max}"
    );
    assert!(!lat.get("buckets").unwrap().as_arr().unwrap().is_empty());
}

#[test]
fn index_stats_json_carries_metrics_section() {
    let dir = std::env::temp_dir().join("xks-cli-test-index-metrics");
    std::fs::create_dir_all(&dir).unwrap();
    let xml = dir.join("corpus.xml");
    std::fs::write(&xml, "<r><a><t>alpha beta</t></a><b><t>gamma</t></b></r>").unwrap();
    let mono = dir.join("corpus.xks");
    assert!(xks()
        .args(["build-index"])
        .arg(&xml)
        .arg(&mono)
        .output()
        .unwrap()
        .status
        .success());
    let out = xks()
        .args(["index-stats"])
        .arg(&mono)
        .args(["--format", "json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let value = xks::store::json::parse(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    let metrics = value.get("metrics").unwrap();
    for name in [
        "pool.pages_read",
        "postings_cache.hits",
        "element_cache.misses",
    ] {
        assert!(
            metrics
                .get("counters")
                .unwrap()
                .get(name)
                .unwrap()
                .as_u64()
                .is_some(),
            "{name}"
        );
    }
    assert!(metrics
        .get("gauges")
        .unwrap()
        .get("pool.capacity_pages")
        .unwrap()
        .as_u64()
        .is_some());
}

#[test]
fn mutable_corpus_lifecycle_through_the_cli() {
    // insert (creates the directory) → search --corpus → delete →
    // compact → verify → stats --corpus: the full durable lifecycle of
    // docs/DURABILITY.md driven exactly as a user would drive it, with
    // a process boundary (and therefore a crash recovery) between
    // every step.
    let dir = std::env::temp_dir().join("xks-cli-test-mutable");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus");
    let doc_a = dir.join("a.xml");
    let doc_b = dir.join("b.xml");
    std::fs::write(&doc_a, "<paper><title>xml keyword search</title></paper>").unwrap();
    std::fs::write(&doc_b, "<paper><title>skyline keyword</title></paper>").unwrap();

    for (doc, ordinal) in [(&doc_a, "0"), (&doc_b, "1")] {
        let out = xks()
            .args(["insert", "--corpus"])
            .arg(&corpus)
            .arg(doc)
            .args(["--root", "pubs"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // Progress goes to stderr, like build-index.
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("inserted document {ordinal}")),
            "{stderr}"
        );
    }

    let hits = |query: &str| {
        let out = xks()
            .args(["search", "--corpus"])
            .arg(&corpus)
            .args([query, "--format", "json"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let value = xks::store::json::parse(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
        value.get("results").unwrap().as_arr().unwrap()[0]
            .get("hits")
            .unwrap()
            .as_arr()
            .unwrap()
            .len()
    };
    assert_eq!(hits("keyword"), 2);

    let out = xks()
        .args(["delete", "--corpus"])
        .arg(&corpus)
        .args(["--doc", "1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(hits("keyword"), 1, "tombstone filters the delta");
    assert_eq!(hits("skyline"), 0);

    let out = xks()
        .args(["compact", "--corpus"])
        .arg(&corpus)
        .args(["--shards", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("generation 1"), "{stderr}");
    assert_eq!(hits("keyword"), 1, "the seal preserves query results");

    // The sealed base passes streaming verification…
    let out = xks()
        .args(["verify", "--index"])
        .arg(corpus.join("corpus.xksm"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok"));

    // …and stats --corpus recovers, runs, and exports the durability
    // counters alongside the corpus gauges.
    let queries = dir.join("queries.txt");
    std::fs::write(&queries, "keyword\n").unwrap();
    let out = xks()
        .args(["stats", "--corpus"])
        .arg(&corpus)
        .args(["--queries"])
        .arg(&queries)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let value = xks::store::json::parse(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    let counters = value.get("counters").unwrap();
    for name in [
        "wal.appends",
        "wal.fsyncs",
        "recovery.records_replayed",
        "recovery.tail_truncated",
        "compaction.runs",
    ] {
        assert!(counters.get(name).unwrap().as_u64().is_some(), "{name}");
    }
    let gauges = value.get("gauges").unwrap();
    // Doc 1 was tombstoned *and* was the highest ordinal when the seal
    // ran, so no trace of it survives compaction — its ordinal is
    // legitimately reissuable and the high-water mark sits at 1.
    assert_eq!(gauges.get("corpus.next_ordinal").unwrap().as_u64(), Some(1));
    assert_eq!(gauges.get("corpus.delta_docs").unwrap().as_u64(), Some(0));
}

#[test]
fn verify_detects_corruption_and_exits_nonzero() {
    let dir = std::env::temp_dir().join("xks-cli-test-verify");
    std::fs::create_dir_all(&dir).unwrap();
    let xml = dir.join("corpus.xml");
    std::fs::write(&xml, "<r><a><t>alpha beta</t></a><b><t>gamma</t></b></r>").unwrap();
    let index = dir.join("corpus.xks");
    assert!(xks()
        .args(["build-index"])
        .arg(&xml)
        .arg(&index)
        .output()
        .unwrap()
        .status
        .success());
    assert!(xks()
        .args(["verify", "--index"])
        .arg(&index)
        .output()
        .unwrap()
        .status
        .success());

    // Flip one byte at the start of the first data section (the first
    // page boundary past the header — byte 0 of the labels section;
    // mid-file offsets can land in page-alignment slack no checksum
    // covers). The streaming CRC check must fail and the exit code
    // must say so.
    let mut bytes = std::fs::read(&index).unwrap();
    bytes[4096] ^= 0x40;
    let broken = dir.join("broken.xks");
    std::fs::write(&broken, &bytes).unwrap();
    let out = xks()
        .args(["verify", "--index"])
        .arg(&broken)
        .output()
        .unwrap();
    assert!(!out.status.success(), "corruption must exit non-zero");
    assert!(!out.stderr.is_empty(), "a diagnostic must name the failure");
}

#[test]
fn build_index_shards_one_still_writes_a_manifest() {
    // --shards follows the flag, not an arithmetic accident: even a
    // computed shard count of 1 (or 0) must produce the manifest
    // format, not silently fall back to a monolithic .xks at the
    // .xksm path.
    let dir = std::env::temp_dir().join("xks-cli-test-shards-one");
    std::fs::create_dir_all(&dir).unwrap();
    let xml = dir.join("corpus.xml");
    std::fs::write(&xml, "<r><a><t>alpha</t></a><b><t>beta</t></b></r>").unwrap();
    for shards in ["1", "0"] {
        let manifest = dir.join(format!("one-{shards}.xksm"));
        let out = xks()
            .args(["build-index"])
            .arg(&xml)
            .arg(&manifest)
            .args(["--shards", shards])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let magic = &std::fs::read(&manifest).unwrap()[..4];
        assert_eq!(magic, b"XKSM", "--shards {shards} wrote {magic:?}");
        let out = xks().args(["index-stats"]).arg(&manifest).output().unwrap();
        assert!(out.status.success());
        assert!(String::from_utf8_lossy(&out.stdout).contains("shards         : 1"));
    }
}

#[test]
fn search_timeout_ms_zero_is_a_typed_timeout() {
    // A zero budget deterministically expires before the first
    // pipeline stage: the CLI must report the typed deadline error
    // (stage and elapsed time), not a generic failure or a hang.
    let out = xks()
        .args(["search"])
        .arg(sample_file())
        .args(["grizzlies", "--timeout-ms", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "expired deadline fails the command");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("deadline exceeded"), "{stderr}");
    assert!(stderr.contains("resolve stage"), "{stderr}");

    // A generous budget changes nothing about the results.
    let out = xks()
        .args(["search"])
        .arg(sample_file())
        .args(["grizzlies", "--timeout-ms", "60000", "--format", "json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"results\""));
}

#[test]
fn serve_e2e_requests_then_sigint_drains_and_exits_zero() {
    use std::io::BufRead as _;

    let mut child = xks()
        .args(["serve"])
        .arg(sample_file())
        .args(["--port", "0", "--workers", "2", "--drain-ms", "5000"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");

    // The startup line is the documented parseable surface: port 0
    // resolves to the real bound address here.
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let first = lines.next().expect("startup line").unwrap();
    let addr: std::net::SocketAddr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line {first:?}"))
        .parse()
        .expect("startup line carries a socket address");

    let health = xks::serve::client::request(addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
    let search =
        xks::serve::client::request(addr, "POST", "/search", b"{\"query\":\"grizzlies\"}").unwrap();
    assert_eq!(search.status, 200);
    assert!(search.text().contains("\"hits\""), "{}", search.text());
    let stats = xks::serve::client::request(addr, "GET", "/stats", b"").unwrap();
    assert_eq!(stats.status, 200);
    assert!(
        stats.text().contains("\"http.requests\""),
        "{}",
        stats.text()
    );

    // SIGINT must drain gracefully: exit code 0 and the final stats
    // line on stderr.
    let kill = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let out = child.wait_with_output().expect("server exits");
    assert!(
        out.status.success(),
        "SIGINT exit must be 0, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("server drained:"), "{stderr}");
    assert!(stderr.contains("response(s) served"), "{stderr}");
}

#[test]
fn serve_response_is_byte_identical_to_cli_search_json() {
    use std::io::BufRead as _;

    // True end-to-end differential through the *binary* on both sides:
    // `xks search --index --format json` and `xks serve --index` must
    // produce byte-identical result objects (modulo wall-clock
    // timings) on both the monolithic and sharded backends.
    let dir = std::env::temp_dir().join("xks-cli-serve-diff");
    std::fs::create_dir_all(&dir).unwrap();
    let xml = sample_file();
    let query = "grizzlies position";

    for (name, shard_args) in [
        ("mono.xks", None),
        ("sharded.xksm", Some(["--shards", "2"])),
    ] {
        let index = dir.join(name);
        let mut build = xks();
        build.args(["build-index"]).arg(&xml).arg(&index);
        if let Some(args) = shard_args {
            build.args(args);
        }
        assert!(build.output().unwrap().status.success());

        let out = xks()
            .args(["search", "--index"])
            .arg(&index)
            .args([query, "--format", "json"])
            .output()
            .unwrap();
        assert!(out.status.success());
        let cli_doc = xks::store::json::parse(std::str::from_utf8(&out.stdout).unwrap()).unwrap();
        let xks::store::json::Value::Obj(mut cli_doc) = cli_doc else {
            panic!("results wrapper object")
        };
        let Some(xks::store::json::Value::Arr(mut results)) = cli_doc.remove("results") else {
            panic!("results array")
        };
        let mut cli_result = results.remove(0);

        let mut child = xks()
            .args(["serve", "--index"])
            .arg(&index)
            .args(["--port", "0"])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        let stdout = child.stdout.take().unwrap();
        let first = std::io::BufReader::new(stdout)
            .lines()
            .next()
            .unwrap()
            .unwrap();
        let addr: std::net::SocketAddr = first
            .strip_prefix("listening on ")
            .unwrap()
            .parse()
            .unwrap();
        let body = format!("{{\"query\":{:?}}}", query);
        let served = xks::serve::client::request(addr, "POST", "/search", body.as_bytes()).unwrap();
        assert_eq!(served.status, 200);
        let mut served_result = xks::store::json::parse(served.text()).unwrap();

        for value in [&mut cli_result, &mut served_result] {
            if let xks::store::json::Value::Obj(fields) = value {
                fields.remove("timings_us");
            }
        }
        assert_eq!(
            xks::store::json::to_string(&served_result),
            xks::store::json::to_string(&cli_result),
            "{name}: served bytes diverged from the CLI render"
        );

        assert!(Command::new("kill")
            .args(["-INT", &child.id().to_string()])
            .status()
            .unwrap()
            .success());
        assert!(child.wait().unwrap().success(), "{name}: SIGINT exit 0");
    }
}

// -- workload matrix ----------------------------------------------------

/// The committed grammar-mix fixture must flow through `xks bench
/// --queries` end to end: every operator class (plain, phrase,
/// exclusion, label filter, adversarial) parses and executes, closing
/// the PR 10 grammar/bench gap.
#[test]
fn bench_accepts_full_grammar_query_file() {
    let fixtures = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let out = xks()
        .args(["bench"])
        .arg(fixtures.join("grammar_corpus.xml"))
        .args(["--queries"])
        .arg(fixtures.join("grammar_mix.txt"))
        .args(["--sweeps", "1", "--format", "json"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = xks::store::json::parse(stdout.trim()).unwrap();
    assert_eq!(value.get("queries").unwrap().as_u64(), Some(10));
    assert!(value.get("fragments").unwrap().as_u64().unwrap() > 0);
}

#[test]
fn workload_list_names_every_matrix_cell() {
    let out = xks()
        .args(["workload", "list", "--format", "json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = xks::store::json::parse(stdout.trim()).unwrap();
    let cells = value.get("cells").unwrap().as_arr().unwrap();
    assert_eq!(cells.len(), 12);
    let names: Vec<&str> = cells
        .iter()
        .map(|c| c.get("name").unwrap().as_str().unwrap())
        .collect();
    assert!(names.contains(&"s1-flat-zipf-single"), "{names:?}");
    assert!(names.contains(&"s100-wide-zipf-multi8"), "{names:?}");
}

#[test]
fn workload_show_reports_every_query_class() {
    let out = xks()
        .args([
            "workload",
            "show",
            "s1-deep-uniform-single",
            "--format",
            "json",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = xks::store::json::parse(stdout.trim()).unwrap();
    assert!(value.get("max_depth").unwrap().as_u64().unwrap() >= 5);
    let classes = value.get("classes").unwrap().as_arr().unwrap();
    assert_eq!(classes.len(), 5);
    for class in classes {
        assert!(
            !class.get("queries").unwrap().as_arr().unwrap().is_empty(),
            "class {:?} has no queries",
            class.get("class")
        );
    }
}

#[test]
fn workload_show_rejects_unknown_cell() {
    let out = xks()
        .args(["workload", "show", "s1-spherical-zipf-single"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown workload cell"), "{stderr}");
}

/// `workload generate` output must round-trip: the emitted XML parses
/// and the emitted query file (full grammar, class comments) drives
/// `xks bench` on that very corpus with nonzero hits.
#[test]
fn workload_generate_feeds_bench_end_to_end() {
    let dir = std::env::temp_dir().join("xks-cli-workload");
    let _ = std::fs::remove_dir_all(&dir);
    let out = xks()
        .args(["workload", "generate", "s1-flat-zipf-single", "--out"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let bench = xks()
        .args(["bench"])
        .arg(dir.join("s1-flat-zipf-single.xml"))
        .args(["--queries"])
        .arg(dir.join("s1-flat-zipf-single.queries.txt"))
        .args(["--sweeps", "1", "--format", "json"])
        .output()
        .expect("binary runs");
    assert!(
        bench.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&bench.stderr)
    );
    let stdout = String::from_utf8_lossy(&bench.stdout);
    let value = xks::store::json::parse(stdout.trim()).unwrap();
    assert_eq!(value.get("queries").unwrap().as_u64(), Some(22));
    assert!(value.get("fragments").unwrap().as_u64().unwrap() > 0);
}
