//! Black-box tests of the `xks` CLI binary.

use std::process::Command;

fn xks() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xks"))
}

fn sample_file() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("xks-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("team.xml");
    std::fs::write(
        &path,
        "<team><name>Grizzlies</name><players>\
         <player><name>Gassol</name><position>forward</position></player>\
         <player><name>Miller</name><position>guard</position></player>\
         <player><name>Warrick</name><position>forward</position></player>\
         </players></team>",
    )
    .unwrap();
    path
}

#[test]
fn search_demonstrates_deduplication() {
    let out = xks()
        .args(["search"])
        .arg(sample_file())
        .args(["grizzlies position", "--xml"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The duplicate forward player is pruned: exactly two positions.
    assert_eq!(stdout.matches("<position>").count(), 2, "{stdout}");
    assert!(stdout.contains("forward") && stdout.contains("guard"));
}

#[test]
fn search_maxmatch_keeps_duplicates() {
    let out = xks()
        .args(["search"])
        .arg(sample_file())
        .args(["grizzlies position", "--xml", "--algo", "maxmatch"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("<position>").count(), 3, "{stdout}");
}

#[test]
fn search_threads_flag_matches_single_thread() {
    // Three queries so `--threads 3` actually spawns workers (the
    // executor clamps to the batch size); results must come back in
    // input order, byte-identical to the single-thread run.
    let file = sample_file();
    let run = |threads: &str| {
        let out = xks()
            .args(["search"])
            .arg(&file)
            .args([
                "grizzlies position",
                "forward",
                "guard miller",
                "--threads",
                threads,
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let sequential = run("1");
    assert_eq!(
        sequential.matches("## query:").count(),
        3,
        "one header per query:\n{sequential}"
    );
    assert_eq!(sequential, run("3"), "--threads must not change results");
}

#[test]
fn bench_batch_mode_reports_throughput() {
    let dir = std::env::temp_dir().join("xks-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let xml = sample_file();
    let index = dir.join("team.xks");
    let queries = dir.join("queries.txt");
    std::fs::write(
        &queries,
        "# comment lines and blanks are skipped\n\n\
         grizzlies position\nforward\nguard miller\n",
    )
    .unwrap();

    let out = xks()
        .args(["build-index"])
        .arg(&xml)
        .arg(&index)
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    let out = xks()
        .args(["bench", "--index"])
        .arg(&index)
        .args(["--queries"])
        .arg(&queries)
        .args(["--threads", "2", "--sweeps", "2"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // 3 queries x 2 sweeps through 2 threads.
    assert!(
        stdout.contains("6 queries (3 x 2 sweeps), 2 thread(s)"),
        "{stdout}"
    );
    assert!(stdout.contains("queries/sec"), "{stdout}");
    assert!(stdout.contains("work split"), "{stdout}");
}

#[test]
fn compare_prints_effectiveness() {
    let out = xks()
        .args(["compare"])
        .arg(sample_file())
        .args(["grizzlies position"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("CFR"), "{stdout}");
    assert!(stdout.contains("Max APR"), "{stdout}");
}

#[test]
fn stats_reports_counts() {
    let out = xks().args(["stats"]).arg(sample_file()).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("nodes          : 12"), "{stdout}");
}

#[test]
fn shred_writes_snapshot() {
    let out_path = std::env::temp_dir().join("xks-cli-test/tables.json");
    let out = xks()
        .args(["shred"])
        .arg(sample_file())
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let doc = xks::store::snapshot::load(&out_path).expect("valid snapshot");
    assert_eq!(doc.element_count(), 12);
    std::fs::remove_file(&out_path).unwrap();
}

#[test]
fn bad_usage_fails_cleanly() {
    for args in [
        vec![],
        vec!["searchx"],
        vec!["search", "/missing.xml", "kw"],
    ] {
        let out = xks().args(&args).output().unwrap();
        assert!(!out.status.success(), "args {args:?} should fail");
        assert!(!out.stderr.is_empty());
    }
}
