//! Black-box tests of the `xks` CLI binary.

use std::process::Command;

fn xks() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xks"))
}

fn sample_file() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("xks-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("team.xml");
    std::fs::write(
        &path,
        "<team><name>Grizzlies</name><players>\
         <player><name>Gassol</name><position>forward</position></player>\
         <player><name>Miller</name><position>guard</position></player>\
         <player><name>Warrick</name><position>forward</position></player>\
         </players></team>",
    )
    .unwrap();
    path
}

#[test]
fn search_demonstrates_deduplication() {
    let out = xks()
        .args(["search"])
        .arg(sample_file())
        .args(["grizzlies position", "--xml"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The duplicate forward player is pruned: exactly two positions.
    assert_eq!(stdout.matches("<position>").count(), 2, "{stdout}");
    assert!(stdout.contains("forward") && stdout.contains("guard"));
}

#[test]
fn search_maxmatch_keeps_duplicates() {
    let out = xks()
        .args(["search"])
        .arg(sample_file())
        .args(["grizzlies position", "--xml", "--algo", "maxmatch"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("<position>").count(), 3, "{stdout}");
}

#[test]
fn compare_prints_effectiveness() {
    let out = xks()
        .args(["compare"])
        .arg(sample_file())
        .args(["grizzlies position"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("CFR"), "{stdout}");
    assert!(stdout.contains("Max APR"), "{stdout}");
}

#[test]
fn stats_reports_counts() {
    let out = xks().args(["stats"]).arg(sample_file()).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("nodes          : 12"), "{stdout}");
}

#[test]
fn shred_writes_snapshot() {
    let out_path = std::env::temp_dir().join("xks-cli-test/tables.json");
    let out = xks()
        .args(["shred"])
        .arg(sample_file())
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let doc = xks::store::snapshot::load(&out_path).expect("valid snapshot");
    assert_eq!(doc.element_count(), 12);
    std::fs::remove_file(&out_path).unwrap();
}

#[test]
fn bad_usage_fails_cleanly() {
    for args in [
        vec![],
        vec!["searchx"],
        vec!["search", "/missing.xml", "kw"],
    ] {
        let out = xks().args(&args).output().unwrap();
        assert!(!out.status.success(), "args {args:?} should fail");
        assert!(!out.stderr.is_empty());
    }
}
